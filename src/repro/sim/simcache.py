"""Memoization of simulation results and event streams.

A block-size sweep (Figure 3, Table 2, the headline statistics) and the
timing model (Figure 4, Table 3, section-5 improvements) repeatedly
simulate the *same frozen trace* — across drivers, at overlapping
geometries.  This module keys both the precomputed
:class:`~repro.sim.events.EventStream` and the finished
:class:`~repro.sim.coherence.SimResult` by the trace's content
fingerprint, so each (trace, geometry) pair is simulated exactly once
per process, and each (trace, block size) pair is split/compacted
exactly once.

Results are treated as immutable by every consumer (nothing in the repo
mutates a ``SimResult`` after construction); the caches are bounded FIFO
so property tests churning thousands of tiny traces cannot grow memory
without bound.

Persistence
-----------

``REPRO_SIM_MEMO`` turns the in-process memo into a durable one backed
by the unified artifact store (:mod:`repro.runtime.artifacts`,
namespace ``sim``): ``1`` uses the default artifact root, any other
value names a store root, unset/``0`` keeps the memo process-local.
Persisted results are small JSON records (:func:`result_to_record`),
keyed by the same (trace fingerprint, geometry, engine, kernel,
chunking) tuple as the memo — so a service worker that already
simulated a (trace, geometry) pair hands the result to every later job
without re-simulating, across processes and restarts.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro import perf
from repro.obs import spans as obs
from repro.runtime import artifacts
from repro.runtime.trace import Trace
from repro.sim.cache import CacheConfig
from repro.sim.coherence import PerProcCounts, MissCounts, SimResult
from repro.sim.engine import REFERENCE, active_engine, simulate_trace_fast
from repro.sim.events import EventStream, build_events

#: Bounds (entries) for the two memo tables.
MAX_RESULTS = 4096
MAX_EVENT_STREAMS = 256

#: Persistent-memo record schema (bump on incompatible change; 2: the
#: coherence protocol joins the config record and the memo key).
RECORD_SCHEMA = 2

ENV_MEMO = "REPRO_SIM_MEMO"

_results: OrderedDict[tuple, SimResult] = OrderedDict()
_events: OrderedDict[tuple, EventStream] = OrderedDict()


def clear() -> None:
    """Drop every memoized result and event stream (tests)."""
    _results.clear()
    _events.clear()


def memo_store() -> Optional[artifacts.ArtifactStore]:
    """The persistent memo's artifact store, or None when disabled."""
    raw = os.environ.get(ENV_MEMO, "").strip()
    if not raw or raw.lower() in {"0", "off", "no", "none", "false"}:
        return None
    root = artifacts.default_root() if raw == "1" else raw
    return artifacts.ArtifactStore(root)


def result_to_record(res: SimResult) -> dict:
    """Flatten a :class:`SimResult` into a JSON-serializable record."""
    return {
        "schema": RECORD_SCHEMA,
        "config": {
            "size": res.config.size,
            "block_size": res.config.block_size,
            "assoc": res.config.assoc,
            "protocol": res.config.protocol,
        },
        "nprocs": res.nprocs,
        "refs": res.refs,
        "misses": list(res.misses.as_tuple()),
        "invalidations": res.invalidations,
        "writebacks": res.writebacks,
        "upgrades": res.upgrades,
        "per_proc": {
            str(pid): list(res.per_proc[pid].as_tuple())
            for pid in res.per_proc
        },
        "fs_by_block": {str(b): n for b, n in res.fs_by_block.items()},
        "miss_by_block": {str(b): n for b, n in res.miss_by_block.items()},
        "fs_pair_by_block": {
            str(b): {f"{a},{c}": n for (a, c), n in pairs.items()}
            for b, pairs in res.fs_pair_by_block.items()
        },
        "extra_refs": res.extra_refs,
        "engine": res.engine,
        "kernel": res.kernel,
    }


def result_from_record(rec: dict) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`result_to_record` output
    (raises on any deformity — callers treat that as a miss)."""
    if rec.get("schema") != RECORD_SCHEMA:
        raise ValueError(f"sim memo schema {rec.get('schema')!r}")
    cfg = rec["config"]
    nprocs = int(rec["nprocs"])
    pids = tuple(sorted(int(p) for p in rec["per_proc"]))
    counts = np.zeros((nprocs + 1, 4), dtype=np.int64)
    for pid_s, row in rec["per_proc"].items():
        counts[int(pid_s) + 1] = row
    m = rec["misses"]
    return SimResult(
        config=CacheConfig(
            size=int(cfg["size"]), block_size=int(cfg["block_size"]),
            assoc=int(cfg["assoc"]),
            protocol=str(cfg.get("protocol", "msi")),
        ),
        nprocs=nprocs,
        refs=int(rec["refs"]),
        misses=MissCounts(int(m[0]), int(m[1]), int(m[2]), int(m[3])),
        invalidations=int(rec["invalidations"]),
        writebacks=int(rec["writebacks"]),
        upgrades=int(rec["upgrades"]),
        per_proc=PerProcCounts(counts, pids),
        fs_by_block={int(b): int(n) for b, n in rec["fs_by_block"].items()},
        miss_by_block={
            int(b): int(n) for b, n in rec["miss_by_block"].items()
        },
        fs_pair_by_block={
            int(b): {
                (int(p.split(",")[0]), int(p.split(",")[1])): int(n)
                for p, n in pairs.items()
            }
            for b, pairs in rec["fs_pair_by_block"].items()
        },
        extra_refs=int(rec["extra_refs"]),
        engine=str(rec["engine"]),
        kernel=str(rec["kernel"]),
    )


def _persist_key(key: tuple) -> str:
    return artifacts.content_key("sim", *(str(part) for part in key))


def _persist_load(store: artifacts.ArtifactStore, key: tuple) -> Optional[SimResult]:
    data = store.read_bytes(artifacts.NS_SIM, _persist_key(key))
    if data is None:
        return None
    try:
        res = result_from_record(json.loads(data.decode()))
    except (ValueError, KeyError, TypeError, IndexError):
        store.delete(artifacts.NS_SIM, _persist_key(key))
        perf.add("sim_memo.corrupt")
        return None
    perf.add("sim_memo.hit")
    return res


def _persist_store(store: artifacts.ArtifactStore, key: tuple,
                   res: SimResult) -> None:
    blob = json.dumps(result_to_record(res), sort_keys=True).encode()
    if store.put_bytes(
        artifacts.NS_SIM, _persist_key(key), blob, ".json"
    ) is not None:
        perf.add("sim_memo.store")


def cached_events(
    trace: Trace, block_size: int, *, word_granularity: bool = False
) -> EventStream:
    """The (memoized) pre-split event stream for one (trace, block size)."""
    key = (trace.fingerprint, block_size, word_granularity)
    got = _events.get(key)
    if got is not None:
        perf.add("events_cache.hit")
        return got
    perf.add("events_cache.miss")
    got = build_events(trace, block_size, word_granularity=word_granularity)
    _events[key] = got
    while len(_events) > MAX_EVENT_STREAMS:
        _events.popitem(last=False)
    return got


def cached_simulate(
    trace: Trace,
    nprocs: int,
    config: CacheConfig,
    *,
    extra_refs: int = 0,
    word_invalidate: bool = False,
    engine: str | None = None,
    kernel: str | None = None,
    chunk_refs: int | None = None,
) -> SimResult:
    """Simulate with the selected engine, memoizing per
    (trace fingerprint, geometry, engine, kernel, chunking).

    The *resolved* kernel variant (native vs python) and the chunking
    parameters are part of the memo key: two configurations that are
    merely asserted equivalent must never share a cache slot, or a bug
    in one could masquerade as the other's result (regression-tested in
    ``tests/test_kernel.py``).

    ``chunk_refs`` routes the simulation through the streaming boundary
    (:func:`repro.sim.engine.simulate_trace_chunked`) in chunks of that
    many references; ``None`` simulates the trace monolithically.

    The returned ``SimResult`` is shared between callers — treat it as
    read-only.
    """
    from repro.sim.coherence import simulate_trace
    from repro.sim.engine import resolve_kernel, simulate_trace_chunked

    engine = engine or active_engine()
    if engine == REFERENCE:
        resolved_kernel = "python"
    else:
        resolved_kernel = resolve_kernel(
            word_invalidate=word_invalidate, kernel=kernel,
            protocol=config.protocol,
        )
    key = (
        trace.fingerprint, nprocs, config.size, config.block_size,
        config.assoc, config.protocol, word_invalidate, extra_refs, engine,
        resolved_kernel, chunk_refs or 0,
    )
    got = _results.get(key)
    if got is not None:
        perf.add("sim_cache.hit")
        return got
    perf.add("sim_cache.miss")
    persist = memo_store()
    if persist is not None:
        got = _persist_load(persist, key)
        if got is not None:
            _results[key] = got
            while len(_results) > MAX_RESULTS:
                _results.popitem(last=False)
            return got
        perf.add("sim_memo.miss")
    with obs.span(
        "sim.simulate",
        engine=engine,
        kernel=resolved_kernel,
        nprocs=nprocs,
        block_size=config.block_size,
        refs=len(trace),
    ):
        if engine == REFERENCE:
            with perf.timer("sim.reference"):
                got = simulate_trace(
                    trace, nprocs, config,
                    extra_refs=extra_refs, word_invalidate=word_invalidate,
                )
        elif chunk_refs:
            with perf.timer("sim.fast"):
                got = simulate_trace_chunked(
                    trace, nprocs, config, chunk_refs,
                    extra_refs=extra_refs, word_invalidate=word_invalidate,
                    kernel=resolved_kernel,
                )
        else:
            events = cached_events(
                trace, config.block_size, word_granularity=word_invalidate
            )
            with perf.timer("sim.fast"):
                got = simulate_trace_fast(
                    trace, nprocs, config,
                    extra_refs=extra_refs, word_invalidate=word_invalidate,
                    events=events, kernel=resolved_kernel,
                )
    _results[key] = got
    while len(_results) > MAX_RESULTS:
        _results.popitem(last=False)
    if persist is not None:
        _persist_store(persist, key, got)
    return got
