"""Exception hierarchy and source locations shared across the toolchain.

Every stage of the pipeline (lexing, parsing, semantic checking, analysis,
transformation, interpretation, simulation) raises a subclass of
:class:`ReproError`, so callers can catch one type at the harness boundary.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A position in a source file, used for diagnostics.

    ``line`` and ``column`` are 1-based.  ``filename`` defaults to
    ``"<input>"`` for programs supplied as strings.
    """

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used for synthesized nodes (builtins, generated code).
BUILTIN_LOC = SourceLocation(0, 0, "<builtin>")


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""

    def __init__(self, message: str, loc: SourceLocation | None = None):
        self.loc = loc
        if loc is not None:
            message = f"{loc}: {message}"
        super().__init__(message)


class LexError(ReproError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(ReproError):
    """Raised when the parser encounters a syntax error."""


class CheckError(ReproError):
    """Raised by the semantic checker (type errors, model violations)."""


class AnalysisError(ReproError):
    """Raised when a compile-time analysis cannot proceed."""


class TransformError(ReproError):
    """Raised when a data transformation cannot be applied."""


class RuntimeFault(ReproError):
    """Raised by the SPMD interpreter for runtime errors in the program
    under test (out-of-bounds index, deadlock, null dereference, ...)."""


class SimulationError(ReproError):
    """Raised by the cache simulator for invalid configurations."""
