"""CFG and call-graph tests."""

import pytest

from repro.errors import AnalysisError
from repro.ir import NodeKind, build_callgraph, build_cfg
from repro.lang import compile_source


def cfg_of(body: str, decls: str = ""):
    src = decls + "\nvoid f()\n{\n" + body + "\n}\nint main() { return 0; }"
    checked = compile_source(src)
    return build_cfg(checked.program.func("f"), frozenset(checked.symtab.funcs))


class TestCFG:
    def test_straight_line(self):
        cfg = cfg_of("int x; x = 1; x = 2;")
        assert cfg.exit.id in cfg.reachable()
        stmts = [n for n in cfg.nodes if n.kind is NodeKind.STMT and n.stmt]
        assert len(stmts) >= 3

    def test_if_creates_branch_and_join(self):
        cfg = cfg_of("int x; x = 0; if (x) { x = 1; } else { x = 2; }")
        branches = cfg.nodes_of_kind(NodeKind.BRANCH)
        assert len(branches) == 1
        assert len(branches[0].succs) == 2

    def test_loop_back_edge(self):
        cfg = cfg_of("int i; for (i = 0; i < 3; i++) { i = i; }")
        loops = cfg.nodes_of_kind(NodeKind.LOOP)
        assert len(loops) == 1
        # the loop header is reachable from inside the body
        body_reach = cfg.reachable(loops[0])
        assert loops[0].id in body_reach

    def test_while_break_reaches_exit(self):
        cfg = cfg_of("while (1) { break; }")
        assert cfg.exit.id in cfg.reachable()

    def test_return_connects_to_exit(self):
        cfg = cfg_of("return;")
        rets = cfg.nodes_of_kind(NodeKind.RETURN)
        assert rets and cfg.exit in rets[0].succs

    def test_sync_node_kinds(self):
        cfg = cfg_of(
            "lock(&l); barrier(); unlock(&l);", decls="lock_t l;"
        )
        assert len(cfg.nodes_of_kind(NodeKind.LOCK)) == 1
        assert len(cfg.nodes_of_kind(NodeKind.BARRIER)) == 1
        assert len(cfg.nodes_of_kind(NodeKind.UNLOCK)) == 1

    def test_loop_depth_annotation(self):
        cfg = cfg_of("int i; int j; for (i = 0; i < 2; i++) { j = i; }")
        inner = [
            n for n in cfg.nodes
            if n.stmt is not None and n.kind is NodeKind.STMT and n.loop_depth > 0
        ]
        assert inner


class TestCallGraph:
    def test_edges_and_spawn(self, counter_checked):
        cg = build_callgraph(counter_checked)
        assert "worker" in cg.spawned
        assert "worker" in cg.edges["main"]

    def test_bottom_up_order(self):
        src = """
        int h() { return 1; }
        int g() { return h(); }
        int f() { return g() + h(); }
        int main() { return f(); }
        """
        cg = build_callgraph(compile_source(src))
        order = cg.bottom_up_order()
        assert order.index("h") < order.index("g") < order.index("f")
        assert order.index("f") < order.index("main")

    def test_recursion_rejected(self):
        src = "int f() { return f(); }\nint main() { return 0; }"
        cg = build_callgraph(compile_source(src))
        with pytest.raises(AnalysisError, match="recursive"):
            cg.bottom_up_order()

    def test_mutual_recursion_rejected(self):
        src = """
        int g();
        """
        # forward declarations are not supported; use indirect recursion
        src = (
            "int f(int x) { if (x) { return f(x - 1); } return 0; }\n"
            "int main() { return 0; }"
        )
        cg = build_callgraph(compile_source(src))
        with pytest.raises(AnalysisError):
            cg.bottom_up_order()

    def test_reachable_from(self, counter_checked):
        cg = build_callgraph(counter_checked)
        assert cg.reachable_from(["main"]) >= {"main", "worker"}
