"""CLI tests (python -m repro)."""

import re

import pytest

from repro.cli import main
from repro.obs import spans as obs

from conftest import COUNTER_SRC


@pytest.fixture(autouse=True)
def _obs_reset():
    """--profile flips global tracing on; restore it per test."""
    yield
    obs.reset()
    obs.disable()


@pytest.fixture()
def src_file(tmp_path):
    f = tmp_path / "prog.pc"
    f.write_text(COUNTER_SRC)
    return str(f)


class TestCLI:
    def test_analyze(self, src_file, capsys):
        assert main(["analyze", src_file, "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "workers: {'worker': 'pid'}" in out
        assert "TransformPlan" in out

    def test_analyze_verbose_decisions(self, src_file, capsys):
        main(["analyze", src_file, "-p", "4", "-v"])
        out = capsys.readouterr().out
        assert "locks are always padded" in out

    def test_transform(self, src_file, capsys):
        assert main(["transform", src_file, "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("// Transformed")
        # and the output is a valid program
        from repro.lang import compile_source

        compile_source(out)

    def test_run(self, src_file, capsys):
        assert main(["run", src_file, "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines()[0] == "160"

    def test_run_optimized_same_output(self, src_file, capsys):
        main(["run", src_file, "-p", "4"])
        base = capsys.readouterr().out
        main(["run", src_file, "-p", "4", "-O"])
        opt = capsys.readouterr().out
        assert base == opt

    def test_simulate(self, src_file, capsys):
        assert main(["simulate", src_file, "-p", "8", "-v"]) == 0
        out = capsys.readouterr().out
        assert "unoptimized" in out and "transformed" in out
        assert "false sharing" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "Maxflow" in out and "Water" in out

    def test_experiments_table1(self, capsys):
        assert main(["experiments", "table1"]) == 0
        assert "810" in capsys.readouterr().out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "nope"])

    def test_block_size_option(self, src_file, capsys):
        assert main(["simulate", src_file, "-p", "4", "-b", "32"]) == 0

    def test_workload_name_accepted_as_file(self, capsys):
        assert main(["analyze", "Pverify", "-p", "2"]) == 0
        assert "TransformPlan" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit, match="neither a file"):
            main(["analyze", "NoSuchProgram", "-p", "2"])


class TestProfilingCLI:
    def test_simulate_profile_emits_exact_table_and_trace(
        self, src_file, tmp_path, capsys
    ):
        """The PR's acceptance check: --profile --trace-out produces a
        valid Chrome trace and an FS table summing to simulator totals."""
        from repro.obs.chrome import validate_trace_file

        out = tmp_path / "trace.json"
        assert main(
            ["simulate", src_file, "-p", "4",
             "--profile", "--trace-out", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "per-structure miss attribution" in text
        assert "(= simulator totals)" in text
        assert "span tree" in text
        # totals row of each table equals the simulator's reported misses
        reported = re.findall(r"misses\s+(\d+)", text)
        totals = re.findall(r"TOTAL\s+(\d+)", text)
        assert totals == reported
        assert validate_trace_file(out) > 0

    def test_profile_command(self, src_file, capsys):
        assert main(["profile", src_file, "-p", "4"]) == 0
        text = capsys.readouterr().out
        assert "span tree" in text
        assert "cache-line heatmap" in text
        assert "false-sharing processor pairs" in text
        assert "analysis covers" in text

    def test_profile_writes_manifest(
        self, src_file, tmp_path, monkeypatch, capsys
    ):
        import json

        log = tmp_path / "runs.jsonl"
        monkeypatch.setenv("REPRO_RUN_LOG", str(log))
        assert main(["profile", src_file, "-p", "4"]) == 0
        recs = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert [r["workload"] for r in recs] == ["prog/N", "prog/C"]
        assert all(r["misses"]["false"] >= 0 for r in recs)
        assert all(r["spans"] for r in recs)

    def test_workloads_stats(self, tmp_path, monkeypatch, capsys):
        from repro.obs import manifest

        log = tmp_path / "runs.jsonl"
        monkeypatch.setenv("REPRO_RUN_LOG", str(log))
        manifest.record(
            manifest.build_record(
                kind="profile", workload="Maxflow/N", source="x",
                plan_desc="natural", nprocs=4, block_size=128,
                trace_len=12345,
                extra={"wall_seconds": 1.25},
            )
        )
        assert main(["workloads", "--stats"]) == 0
        text = capsys.readouterr().out
        assert "Workload statistics" in text
        row = next(
            line for line in text.splitlines()
            if line.startswith("Maxflow") and "12,345" in line
        )
        assert "1.25s" in row
        # never-recorded workloads render as dashes, not zeros
        assert re.search(r"Water.*—", text)
