"""CLI tests (python -m repro)."""

import pytest

from repro.cli import main

from conftest import COUNTER_SRC


@pytest.fixture()
def src_file(tmp_path):
    f = tmp_path / "prog.pc"
    f.write_text(COUNTER_SRC)
    return str(f)


class TestCLI:
    def test_analyze(self, src_file, capsys):
        assert main(["analyze", src_file, "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "workers: {'worker': 'pid'}" in out
        assert "TransformPlan" in out

    def test_analyze_verbose_decisions(self, src_file, capsys):
        main(["analyze", src_file, "-p", "4", "-v"])
        out = capsys.readouterr().out
        assert "locks are always padded" in out

    def test_transform(self, src_file, capsys):
        assert main(["transform", src_file, "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("// Transformed")
        # and the output is a valid program
        from repro.lang import compile_source

        compile_source(out)

    def test_run(self, src_file, capsys):
        assert main(["run", src_file, "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines()[0] == "160"

    def test_run_optimized_same_output(self, src_file, capsys):
        main(["run", src_file, "-p", "4"])
        base = capsys.readouterr().out
        main(["run", src_file, "-p", "4", "-O"])
        opt = capsys.readouterr().out
        assert base == opt

    def test_simulate(self, src_file, capsys):
        assert main(["simulate", src_file, "-p", "8", "-v"]) == 0
        out = capsys.readouterr().out
        assert "unoptimized" in out and "transformed" in out
        assert "false sharing" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "Maxflow" in out and "Water" in out

    def test_experiments_table1(self, capsys):
        assert main(["experiments", "table1"]) == 0
        assert "810" in capsys.readouterr().out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "nope"])

    def test_block_size_option(self, src_file, capsys):
        assert main(["simulate", src_file, "-p", "4", "-b", "32"]) == 0
