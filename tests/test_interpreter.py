"""SPMD interpreter tests: semantics, synchronization, determinism."""

import pytest

from repro.errors import RuntimeFault
from repro.lang import compile_source
from repro.layout import DataLayout
from repro.runtime import run_program

from conftest import BLOCKED_SRC, COUNTER_SRC, HEAP_SRC


def run(src: str, nprocs: int = 4):
    checked = compile_source(src)
    layout = DataLayout(checked, nprocs=nprocs)
    return run_program(checked, layout, nprocs)


def run_main(body: str, decls: str = "", nprocs: int = 1):
    return run(decls + "\nint main()\n{\n" + body + "\n}\n", nprocs)


class TestExpressionSemantics:
    def test_arithmetic(self):
        r = run_main("print(7 + 3 * 2); print(10 / 3); print(10 % 3); return 0;")
        assert r.output == ["13", "3", "1"]

    def test_c_division_truncates_toward_zero(self):
        r = run_main("print((0 - 7) / 2); print((0 - 7) % 2); return 0;")
        assert r.output == ["-3", "-1"]

    def test_double_arithmetic(self):
        r = run_main("double d; d = 1.0 / 4.0; print(d); return 0;")
        assert r.output == ["0.25"]

    def test_comparisons_and_logic(self):
        r = run_main(
            "print(1 < 2); print(2 <= 1); print(1 && 0); print(1 || 0); print(!3);"
            " return 0;"
        )
        assert r.output == ["1", "0", "0", "1", "0"]

    def test_short_circuit(self):
        # division by zero on the right is never evaluated
        r = run_main("int x; x = 0; print(x != 0 && 1 / x > 0); return 0;")
        assert r.output == ["0"]

    def test_builtins(self):
        r = run_main(
            "print(min(3, 5)); print(max(3, 5)); print(abs(0 - 4));"
            " print(toint(2.9)); return 0;"
        )
        assert r.output == ["3", "5", "4", "2"]

    def test_rnd_deterministic(self):
        a = run_main("print(rnd(42)); return 0;")
        b = run_main("print(rnd(42)); return 0;")
        assert a.output == b.output


class TestControlFlow:
    def test_nested_loops_and_break(self):
        r = run_main(
            "int i; int j; int n; n = 0;\n"
            "for (i = 0; i < 5; i++) {\n"
            "    for (j = 0; j < 5; j++) {\n"
            "        if (j == 2) { break; }\n"
            "        n += 1;\n"
            "    }\n"
            "}\n"
            "print(n); return 0;"
        )
        assert r.output == ["10"]

    def test_continue(self):
        r = run_main(
            "int i; int n; n = 0;\n"
            "for (i = 0; i < 6; i++) { if (i % 2 == 0) { continue; } n += i; }\n"
            "print(n); return 0;"
        )
        assert r.output == ["9"]

    def test_function_calls_and_returns(self):
        r = run(
            "int fib(int n)\n{\n"
            "    int a; int b; int t; int i;\n"
            "    a = 0; b = 1;\n"
            "    for (i = 0; i < n; i++) { t = a + b; a = b; b = t; }\n"
            "    return a;\n}\n"
            "int main() { print(fib(10)); return 0; }"
        )
        assert r.output == ["55"]


class TestMemory:
    def test_globals_and_structs(self):
        r = run(
            "struct p { int x; double y; }; struct p pt;\n"
            "int main()\n{\n"
            "    pt.x = 3; pt.y = 1.5;\n"
            "    print(pt.x); print(pt.y);\n    return 0;\n}"
        )
        assert r.output == ["3", "1.5"]

    def test_heap_alloc_and_pointers(self):
        r = run(
            "struct n { int v; struct n *next; }; struct n *head;\n"
            "int main()\n{\n"
            "    struct n *second;\n"
            "    head = alloc(struct n);\n"
            "    second = alloc(struct n);\n"
            "    head->v = 1; head->next = second;\n"
            "    second->v = 2; second->next = 0;\n"
            "    print(head->next->v);\n"
            "    print(head->next->next == 0);\n    return 0;\n}"
        )
        assert r.output == ["2", "1"]

    def test_alloc_array(self):
        r = run(
            "double *xs;\n"
            "int main()\n{\n"
            "    int i; double s;\n"
            "    xs = alloc_array(double, 10);\n"
            "    for (i = 0; i < 10; i++) { xs[i] = tofloat(i); }\n"
            "    s = 0.0;\n"
            "    for (i = 0; i < 10; i++) { s = s + xs[i]; }\n"
            "    print(s);\n    return 0;\n}"
        )
        assert r.output == ["45.0"]

    def test_address_of_and_deref(self):
        r = run(
            "int g; int *p;\n"
            "int main() { p = &g; *p = 42; print(g); return 0; }"
        )
        assert r.output == ["42"]

    def test_out_of_bounds_faults(self):
        with pytest.raises(RuntimeFault, match="out of bounds"):
            run("int a[4];\nint main() { a[7] = 1; return 0; }")
        with pytest.raises(RuntimeFault, match="out of bounds"):
            run("int a[4];\nint main() { int i; i = 0 - 1; a[i] = 1; return 0; }")

    def test_null_deref_faults(self):
        with pytest.raises(RuntimeFault, match="null"):
            run(
                "struct n { int v; }; struct n *p;\n"
                "int main() { p->v = 1; return 0; }"
            )

    def test_division_by_zero_faults(self):
        with pytest.raises(RuntimeFault, match="zero"):
            run_main("int x; x = 0; print(1 / x); return 0;")


class TestParallelism:
    def test_counter_program_result(self):
        checked = compile_source(COUNTER_SRC)
        for nprocs in (1, 3, 8):
            r = run_program(checked, DataLayout(checked, nprocs=nprocs), nprocs)
            assert r.output == [str(40 * nprocs)]

    def test_blocked_program(self):
        checked = compile_source(BLOCKED_SRC)
        r = run_program(checked, DataLayout(checked, nprocs=4), 4)
        # proc 0 sums data[0..23] after increment: (i%5)+1 summed
        expected = sum(i % 5 + 1 for i in range(24))
        assert r.output == [str(expected)]

    def test_heap_program(self):
        checked = compile_source(HEAP_SRC)
        r = run_program(checked, DataLayout(checked, nprocs=4), 4)
        assert r.output == ["6"]  # one count increment per round

    def test_deterministic_trace(self):
        checked = compile_source(COUNTER_SRC)
        r1 = run_program(checked, DataLayout(checked, nprocs=4), 4)
        r2 = run_program(checked, DataLayout(checked, nprocs=4), 4)
        assert list(r1.trace.addr) == list(r2.trace.addr)
        assert list(r1.trace.proc) == list(r2.trace.proc)

    def test_output_invariant_under_transformed_layout(self, counter_checked):
        from repro.analysis import analyze_program
        from repro.transform import decide_transformations

        pa = analyze_program(counter_checked, 4)
        plan = decide_transformations(pa)
        base = run_program(
            counter_checked, DataLayout(counter_checked, nprocs=4), 4
        )
        opt = run_program(
            counter_checked, DataLayout(counter_checked, plan, nprocs=4), 4
        )
        assert base.output == opt.output

    def test_unlock_not_held_faults(self):
        src = """
        lock_t l;
        void w(int pid) { unlock(&l); }
        int main()
        {
            create(w, 0);
            wait_for_end();
            return 0;
        }
        """
        with pytest.raises(RuntimeFault, match="unlock"):
            run(src, 1)

    def test_recursive_lock_faults(self):
        src = """
        lock_t l;
        void w(int pid) { lock(&l); lock(&l); }
        int main()
        {
            create(w, 0);
            wait_for_end();
            return 0;
        }
        """
        with pytest.raises(RuntimeFault, match="recursive"):
            run(src, 1)

    def test_lock_deadlock_detected(self):
        src = """
        lock_t a;
        lock_t b;
        void w(int pid)
        {
            if (pid == 0) { lock(&a); barrier(); lock(&b); }
            else { lock(&b); barrier(); lock(&a); }
        }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            return 0;
        }
        """
        with pytest.raises(RuntimeFault, match="deadlock"):
            run(src, 2)

    def test_trace_contains_only_shared(self):
        from repro.runtime.interpreter import PRIVATE_BASE

        checked = compile_source(COUNTER_SRC)
        r = run_program(checked, DataLayout(checked, nprocs=2), 2)
        assert all(a < PRIVATE_BASE for a in r.trace.addr)
        assert sum(r.private_refs.values()) > 0

    def test_work_counters_positive(self, counter_checked):
        r = run_program(counter_checked, DataLayout(counter_checked, nprocs=2), 2)
        assert all(w > 0 for w in r.work.values())
