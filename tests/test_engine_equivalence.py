"""Fast-path engine equivalence: the vectorized event pipeline plus
run-length compaction must reproduce the reference simulator's results
*exactly* — every miss count, per-processor split, and per-block
histogram — on real workload traces and on adversarial random traces.

Property tests draw small traces with odd sizes (block straddles),
tiny caches (forced replacements), and both invalidation granularities;
the workload tests cover every simulation benchmark at the paper's two
headline block sizes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.trace import Trace
from repro.sim import (
    CacheConfig,
    build_events,
    simulate_trace,
    simulate_trace_fast,
)
from repro.sim.engine import simulate
from repro.workloads.registry import SIMULATION_WORKLOADS


def assert_equivalent(fast, ref):
    assert fast.engine == "fast" and ref.engine == "reference"
    assert fast.misses == ref.misses
    assert dict(fast.per_proc) == dict(ref.per_proc)
    assert fast.invalidations == ref.invalidations
    assert fast.writebacks == ref.writebacks
    assert fast.upgrades == ref.upgrades
    assert fast.refs == ref.refs
    assert fast.fs_by_block == ref.fs_by_block
    assert fast.miss_by_block == ref.miss_by_block
    assert fast.fs_pair_by_block == ref.fs_pair_by_block
    # Pair tags are a partition of the false-sharing misses.
    folded = sum(
        n for pairs in ref.fs_pair_by_block.values() for n in pairs.values()
    )
    assert folded == ref.misses.false_sharing


def make_trace(events):
    proc, addr, size, w = zip(*events)
    return Trace(
        proc=np.array(proc, dtype=np.int32),
        addr=np.array(addr, dtype=np.int64),
        size=np.array(size, dtype=np.int32),
        is_write=np.array(w, dtype=bool),
    )


# ---------------------------------------------------------------------------
# property tests on random traces
# ---------------------------------------------------------------------------

events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-1, max_value=3),          # proc (incl. main)
        st.integers(min_value=0, max_value=255),         # addr
        st.sampled_from([1, 2, 3, 4, 5, 7, 8, 12, 16]),  # size (odd: straddles)
        st.booleans(),                                   # is_write
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=200, deadline=None)
@given(events=events_strategy, block=st.sampled_from([8, 16, 32]))
def test_fast_matches_reference_random(events, block):
    trace = make_trace(events)
    # Tiny direct-mapped-ish cache so replacements occur.
    cfg = CacheConfig(size=4 * block, block_size=block, assoc=1)
    ref = simulate_trace(trace, 4, cfg)
    fast = simulate_trace_fast(trace, 4, cfg)
    assert_equivalent(fast, ref)


@settings(max_examples=200, deadline=None)
@given(events=events_strategy, block=st.sampled_from([8, 16, 32]))
def test_fast_matches_reference_random_word_invalidate(events, block):
    trace = make_trace(events)
    cfg = CacheConfig(size=8 * block, block_size=block, assoc=2)
    ref = simulate_trace(trace, 4, cfg, word_invalidate=True)
    fast = simulate_trace_fast(trace, 4, cfg, word_invalidate=True)
    assert_equivalent(fast, ref)


@settings(max_examples=100, deadline=None)
@given(events=events_strategy)
def test_compaction_matches_uncompacted(events):
    """Run-length compaction itself must be a no-op on the results."""
    trace = make_trace(events)
    cfg = CacheConfig(size=64, block_size=16, assoc=1)
    plain = build_events(trace, 16, compact=False)
    packed = build_events(trace, 16, compact=True)
    # n_refs counts straddle-split events, so it can exceed len(trace).
    assert int(packed.repeat.sum()) == plain.n_refs >= len(trace)
    a = simulate_trace_fast(trace, 4, cfg, events=plain)
    b = simulate_trace_fast(trace, 4, cfg, events=packed)
    assert a.misses == b.misses and dict(a.per_proc) == dict(b.per_proc)
    assert a.refs == b.refs and a.invalidations == b.invalidations


# ---------------------------------------------------------------------------
# every simulation workload, both headline block sizes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "wl", SIMULATION_WORKLOADS, ids=[w.name for w in SIMULATION_WORKLOADS]
)
@pytest.mark.parametrize("block_size", [16, 128])
def test_workload_equivalence(wl, block_size, workload_run):
    run = workload_run(wl)
    cfg = CacheConfig(size=32 * 1024, block_size=block_size, assoc=4)
    extra = sum(run.private_refs.values())
    ref = simulate(
        run.trace, run.nprocs, cfg, extra_refs=extra, engine="reference"
    )
    fast = simulate(run.trace, run.nprocs, cfg, extra_refs=extra, engine="fast")
    assert_equivalent(fast, ref)


@pytest.mark.parametrize(
    "wl", SIMULATION_WORKLOADS[:3], ids=[w.name for w in SIMULATION_WORKLOADS[:3]]
)
def test_workload_equivalence_word_invalidate(wl, workload_run):
    run = workload_run(wl)
    cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)
    ref = simulate(
        run.trace, run.nprocs, cfg, word_invalidate=True, engine="reference"
    )
    fast = simulate(
        run.trace, run.nprocs, cfg, word_invalidate=True, engine="fast"
    )
    assert_equivalent(fast, ref)
