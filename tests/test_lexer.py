"""Unit tests for the lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind as K


def kinds(src):
    return [t.kind for t in tokenize(src)]


def values(src):
    return [t.value for t in tokenize(src) if t.value is not None]


class TestBasics:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is K.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("int x")[:2] == [K.KW_INT, K.IDENT]
        assert kinds("while_x")[0] is K.IDENT  # not the keyword
        assert kinds("lock_t l")[0] is K.KW_LOCK

    def test_all_keywords(self):
        src = "int double void lock_t struct if else while for return break continue"
        expected = [
            K.KW_INT, K.KW_DOUBLE, K.KW_VOID, K.KW_LOCK, K.KW_STRUCT,
            K.KW_IF, K.KW_ELSE, K.KW_WHILE, K.KW_FOR, K.KW_RETURN,
            K.KW_BREAK, K.KW_CONTINUE, K.EOF,
        ]
        assert kinds(src) == expected

    def test_underscore_identifier(self):
        toks = tokenize("_foo __bar_9")
        assert [t.value for t in toks[:2]] == ["_foo", "__bar_9"]


class TestNumbers:
    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is K.INT_LIT and toks[0].value == 42

    def test_float_forms(self):
        assert values("1.5") == [1.5]
        assert values(".5") == [0.5]
        assert values("2.") == [2.0]
        assert values("1e3") == [1000.0]
        assert values("1.5e-2") == [0.015]
        assert values("2E+1") == [20.0]

    def test_int_then_member_not_float(self):
        # "1.x" should not be lexed as a float followed by ident
        toks = tokenize("a.b")
        assert [t.kind for t in toks[:3]] == [K.IDENT, K.DOT, K.IDENT]

    def test_negative_is_separate_minus(self):
        assert kinds("-3")[:2] == [K.MINUS, K.INT_LIT]


class TestOperators:
    def test_two_char_operators(self):
        src = "== != <= >= && || -> += -= *= /= ++ --"
        expected = [
            K.EQ, K.NE, K.LE, K.GE, K.ANDAND, K.OROR, K.ARROW,
            K.PLUS_ASSIGN, K.MINUS_ASSIGN, K.STAR_ASSIGN, K.SLASH_ASSIGN,
            K.PLUSPLUS, K.MINUSMINUS, K.EOF,
        ]
        assert kinds(src) == expected

    def test_single_char_operators(self):
        src = "( ) { } [ ] ; , . = + - * / % & ! < >"
        got = kinds(src)
        assert got[-1] is K.EOF and len(got) == 20

    def test_maximal_munch(self):
        # ">=" lexes as one token, not "> ="
        assert kinds("a>=b") == [K.IDENT, K.GE, K.IDENT, K.EOF]


class TestCommentsAndErrors:
    def test_line_comment(self):
        assert kinds("a // comment\n b") == [K.IDENT, K.IDENT, K.EOF]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [K.IDENT, K.IDENT, K.EOF]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_location_tracking(self):
        toks = tokenize("a\n  b")
        assert toks[0].loc.line == 1 and toks[0].loc.column == 1
        assert toks[1].loc.line == 2 and toks[1].loc.column == 3
