"""Runtime edge cases: indirection protocol details, uneven barriers,
runaway guards, straddling layouts."""

import pytest

from repro.errors import RuntimeFault
from repro.analysis import analyze_program
from repro.lang import compile_source
from repro.layout import DataLayout
from repro.runtime import run_program
from repro.transform import decide_transformations

from conftest import HEAP_SRC


def run(src, nprocs=4, plan=None, **kw):
    checked = compile_source(src)
    layout = DataLayout(checked, plan, nprocs=nprocs)
    return run_program(checked, layout, nprocs, **kw)


class TestIndirectionProtocol:
    def _opt_run(self, nprocs=4):
        checked = compile_source(HEAP_SRC)
        plan = decide_transformations(analyze_program(checked, nprocs))
        assert plan.indirections
        layout = DataLayout(checked, plan, nprocs=nprocs)
        return run_program(checked, layout, nprocs), layout

    def test_values_survive_migration(self):
        # main initializes tag (not indirected) and workers count/value:
        # results must match the natural layout exactly
        base = run(HEAP_SRC, 4)
        opt, _ = self._opt_run(4)
        assert base.output == opt.output

    def test_arena_addresses_disjoint_across_processes(self):
        from repro.layout import ARENA_BASE

        opt, layout = self._opt_run(4)
        # every worker got its own arena region
        bases = [layout.arena_base(p) for p in range(4)]
        assert len(set(bases)) == 4
        assert all(b >= ARENA_BASE for b in bases)

    def test_per_field_subregions_disjoint(self):
        _, layout = self._opt_run(4)
        regions = {
            layout.arena_region(1, s, f)
            for (s, f) in layout.indirected
        }
        assert len(regions) == len(layout.indirected)

    def test_extra_pointer_loads_in_trace(self):
        base = run(HEAP_SRC, 4)
        opt, _ = self._opt_run(4)
        # indirection costs an additional memory access per reference
        assert len(opt.trace) > len(base.trace)


class TestBarriersAndWorkers:
    def test_uneven_worker_exit_releases_barrier(self):
        # pid 0 runs one barrier round; the others run two: once pid 0
        # exits, the remaining workers' barrier must still release
        src = """
        int a[64];
        void w(int pid)
        {
            a[pid] = 1;
            barrier();
            if (pid > 0) {
                a[pid] = 2;
                barrier();
            }
        }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            print(a[0] + a[1]);
            return 0;
        }
        """
        # note: the *static* analysis would reject this barrier placement,
        # but the runtime handles it (checker/analyses only run on demand)
        r = run(src, 4)
        assert r.output == ["3"]

    def test_single_worker_barriers_trivial(self):
        src = """
        int x;
        void w(int pid) { barrier(); x = 1; barrier(); x = x + 1; }
        int main()
        {
            create(w, 0);
            wait_for_end();
            print(x);
            return 0;
        }
        """
        assert run(src, 1).output == ["2"]

    def test_max_steps_guard_fires(self):
        src = """
        int spin;
        void w(int pid) { while (1 == 1) { spin += 1; } }
        int main()
        {
            create(w, 0);
            wait_for_end();
            return 0;
        }
        """
        with pytest.raises(RuntimeFault, match="exceeded"):
            run(src, 1, max_steps=5000)

    def test_zero_workers_program(self):
        src = "int main() { print(7); return 0; }"
        r = run(src, 4)
        assert r.output == ["7"] and r.exit_value == 0


class TestLayoutEdge:
    def test_doubles_not_straddling_after_transform(self):
        # group region mixes 4-byte and 8-byte members: alignment must hold
        src = """
        int a[64];
        double b[64];
        void w(int pid)
        {
            int i;
            for (i = 0; i < 30; i++) {
                a[pid] += 1;
                b[pid] = b[pid] + 0.5;
            }
        }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            print(b[0]);
            return 0;
        }
        """
        checked = compile_source(src)
        plan = decide_transformations(analyze_program(checked, 5))
        layout = DataLayout(checked, plan, nprocs=5)
        for i in range(5):
            addr, ty = layout.materialize("b", [("idx", i)])
            assert addr % 8 == 0, f"b[{i}] misaligned at {addr:#x}"
        base = run_program(checked, DataLayout(checked, nprocs=5), 5)
        opt = run_program(checked, layout, 5)
        assert base.output == opt.output

    def test_heap_segments_recorded(self):
        r = run(HEAP_SRC, 2)
        assert len(r.heap_segments) == 32
        labels = {label for (_a, _s, label) in r.heap_segments}
        assert labels == {"heap:struct node"}
