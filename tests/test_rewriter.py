"""Source-to-source rewriter tests: renderings re-parse; plans without
indirection render to executable programs with identical behaviour and
no false sharing under the *natural* layout."""

from repro.analysis import analyze_program
from repro.lang import compile_source
from repro.layout import DataLayout
from repro.runtime import run_program
from repro.sim import simulate_run
from repro.transform import (
    decide_transformations,
    render_transformed_source,
)

from conftest import COUNTER_SRC, HEAP_SRC


def compiler_rendering(src: str, nprocs: int = 4):
    checked = compile_source(src)
    plan = decide_transformations(analyze_program(checked, nprocs))
    return checked, plan, render_transformed_source(
        checked, plan, nprocs=nprocs
    )


class TestRendering:
    def test_counter_rendering_reparses(self):
        _, _, text = compiler_rendering(COUNTER_SRC)
        compile_source(text)

    def test_heap_rendering_reparses(self):
        _, plan, text = compiler_rendering(HEAP_SRC)
        assert plan.indirections
        compile_source(text)
        assert "arena" in text  # indirection annotated

    def test_plan_description_in_header(self):
        _, _, text = compiler_rendering(COUNTER_SRC)
        assert text.startswith("// Transformed")
        assert "group & transpose" in text or "pad" in text

    def test_region_struct_emitted(self):
        _, _, text = compiler_rendering(COUNTER_SRC)
        assert "__fs_region" in text
        assert "__pad" in text

    def test_indirected_field_retyped(self):
        _, _, text = compiler_rendering(HEAP_SRC)
        assert "int *count;" in text
        assert "*nodes[i]->count += 1;" in text


class TestExecutableEquivalence:
    def _equiv(self, src: str, nprocs: int = 4):
        checked = compile_source(src)
        plan = decide_transformations(analyze_program(checked, nprocs))
        assert not plan.indirections, "use a g&t/pad-only program here"
        text = render_transformed_source(checked, plan, nprocs=nprocs)
        transformed = compile_source(text)
        base = run_program(checked, DataLayout(checked, nprocs=nprocs), nprocs)
        rendered = run_program(
            transformed, DataLayout(transformed, nprocs=nprocs), nprocs
        )
        return base, rendered

    def test_counter_outputs_match(self):
        base, rendered = self._equiv(COUNTER_SRC)
        assert base.output == rendered.output

    def test_rendered_program_has_no_false_sharing(self):
        base, rendered = self._equiv(COUNTER_SRC)
        fs_base = simulate_run(base, 128).misses.false_sharing
        fs_rendered = simulate_run(rendered, 128).misses.false_sharing
        assert fs_base > 100
        assert fs_rendered < fs_base * 0.05

    def test_workload_rendering_equivalence(self):
        from repro.workloads import WATER

        pipe = WATER.pipeline()
        plan = pipe.compiler_plan(4)
        assert not plan.indirections
        text = render_transformed_source(pipe.checked, plan, nprocs=4)
        transformed = compile_source(text)
        base = pipe.run_unoptimized(4)
        rendered = run_program(
            transformed, DataLayout(transformed, nprocs=4), 4
        )
        assert base.run.output == rendered.output
