"""Action-space enumeration: legality, composition, heuristic fidelity."""

import pytest

from repro.analysis import analyze_program
from repro.transform import decide_transformations
from repro.tune.space import (
    PlanSpace,
    enumerate_space,
    space_candidate_plans,
)


@pytest.fixture(scope="module")
def counter_space(counter_checked):
    pa = analyze_program(counter_checked, 4)
    heuristic = decide_transformations(pa).canonical()
    return pa, heuristic, enumerate_space(pa, heuristic_plan=heuristic)


@pytest.fixture(scope="module")
def heap_space(heap_checked):
    pa = analyze_program(heap_checked, 4)
    heuristic = decide_transformations(pa).canonical()
    return pa, heuristic, enumerate_space(pa, heuristic_plan=heuristic)


class TestEnumeration:
    def test_counter_structures(self, counter_space):
        _pa, _h, space = counter_space
        by_name = {sc.target: sc for sc in space.structures}
        # the two per-process arrays and the lock-guarded total scalar
        assert set(by_name) == {"counter", "sums", "total"}
        # arrays: none, group(partition), pad-per-element, pad-whole
        assert len(by_name["counter"].actions) == 4
        assert len(by_name["sums"].actions) == 4
        # shared scalar: none, pad
        assert len(by_name["total"].actions) == 2

    def test_action_zero_is_none(self, counter_space, heap_space):
        for space in (counter_space[2], heap_space[2]):
            for sc in space.structures:
                assert sc.actions[0].kind == "none"
                assert not sc.actions[0].group
                assert not sc.actions[0].pads
                assert not sc.actions[0].indirections
                for act in sc.actions:
                    assert act.target == sc.target

    def test_size_is_product(self, counter_space):
        _pa, _h, space = counter_space
        n = 1
        for sc in space.structures:
            n *= len(sc.actions)
        assert space.size == n == 4 * 4 * 2
        assert len(list(space.choice_vectors())) == space.size

    def test_locks_fixed_not_searched(self, counter_space):
        _pa, _h, space = counter_space
        assert [str(lp) for lp in space.fixed.lock_pads]
        assert all("biglock" not in sc.target for sc in space.structures)

    def test_heap_fields_get_indirection_only(self, heap_space):
        _pa, _h, space = heap_space
        by_name = {sc.target: sc for sc in space.structures}
        for field in ("nodes[*].count", "nodes[*].value"):
            kinds = [a.kind for a in by_name[field].actions]
            assert kinds == ["none", "indirection"]

    def test_weights_ordered_heaviest_first(self, counter_space):
        _pa, _h, space = counter_space
        weights = [sc.weight for sc in space.structures]
        assert weights == sorted(weights, reverse=True)


class TestCompose:
    def test_all_none_is_fixed_part_only(self, counter_space):
        _pa, _h, space = counter_space
        plan = space.compose((0,) * len(space.structures))
        assert not plan.group and not plan.pads and not plan.indirections
        assert plan.lock_pads  # locks always ride along

    def test_compose_is_canonical(self, counter_space):
        _pa, _h, space = counter_space
        vec = tuple(len(sc.actions) - 1 for sc in space.structures)
        plan = space.compose(vec)
        assert plan.fingerprint == plan.canonical().fingerprint
        assert plan.describe() == plan.canonical().describe()

    def test_compose_records_tuner_decisions(self, counter_space):
        _pa, _h, space = counter_space
        plan = space.compose((1,) + (0,) * (len(space.structures) - 1))
        assert len(plan.decisions) == len(space.structures)
        assert all(d.reason.startswith("tuner:") for d in plan.decisions)

    def test_wrong_vector_length_rejected(self, counter_space):
        _pa, _h, space = counter_space
        with pytest.raises(ValueError):
            space.compose((0,))


class TestHeuristicInSpace:
    """The guarantee behind "tuned never worse": the heuristic plan is a
    point in the space, recoverable by match_plan."""

    def test_counter_roundtrip(self, counter_space):
        _pa, heuristic, space = counter_space
        vec = space.match_plan(heuristic)
        assert space.compose(vec).fingerprint == heuristic.fingerprint

    def test_heap_roundtrip(self, heap_space):
        _pa, heuristic, space = heap_space
        vec = space.match_plan(heuristic)
        assert space.compose(vec).fingerprint == heuristic.fingerprint

    def test_empty_plan_maps_to_all_none(self, counter_space):
        from repro.transform.plan import TransformPlan

        _pa, _h, space = counter_space
        vec = space.match_plan(TransformPlan(nprocs=4))
        assert vec == (0,) * len(space.structures)


class TestFrozenStructures:
    def test_max_structures_cut(self, counter_space):
        pa, heuristic, full = counter_space
        small = enumerate_space(
            pa, max_structures=1, heuristic_plan=heuristic
        )
        assert len(small.structures) == 1
        # the cut keeps the heaviest structure
        assert small.structures[0].target == full.structures[0].target
        assert set(small.frozen) == {
            sc.target for sc in full.structures[1:]
        }

    def test_frozen_keep_heuristic_fragments(self, counter_space):
        pa, heuristic, _full = counter_space
        small = enumerate_space(
            pa, max_structures=1, heuristic_plan=heuristic
        )
        # 'sums' is frozen; the heuristic groups it, so the fixed plan
        # must carry that group member
        frozen_bases = {m.base for m in small.fixed.group}
        heuristic_bases = {m.base for m in heuristic.group}
        kept = small.structures[0].target
        assert frozen_bases == {
            b for b in heuristic_bases if b != kept
        }

    def test_heuristic_still_reachable_after_cut(self, counter_space):
        pa, heuristic, _full = counter_space
        small = enumerate_space(
            pa, max_structures=1, heuristic_plan=heuristic
        )
        vec = small.match_plan(heuristic)
        assert small.compose(vec).fingerprint == heuristic.fingerprint


class TestFuzzHook:
    def test_candidates_distinct_and_bounded(self, counter_checked):
        cands = space_candidate_plans(counter_checked, 4, limit=6)
        assert 0 < len(cands) <= 6
        fps = [p.fingerprint for _label, p in cands]
        assert len(set(fps)) == len(fps)
        for label, _p in cands:
            assert label.startswith("space[")

    def test_includes_none_and_heuristic(self, counter_checked):
        pa = analyze_program(counter_checked, 4)
        heuristic = decide_transformations(pa).canonical()
        space = enumerate_space(pa, heuristic_plan=heuristic)
        none_fp = space.compose((0,) * len(space.structures)).fingerprint
        cands = space_candidate_plans(counter_checked, 4, limit=12)
        fps = {p.fingerprint for _label, p in cands}
        assert none_fp in fps
        assert heuristic.fingerprint in fps

    def test_deterministic(self, heap_checked):
        a = space_candidate_plans(heap_checked, 4, limit=8)
        b = space_candidate_plans(heap_checked, 4, limit=8)
        assert [(l, p.fingerprint) for l, p in a] == [
            (l, p.fingerprint) for l, p in b
        ]
