"""CLI error paths: bad inputs earn a non-zero exit and a one-line
diagnostic — never a Python traceback."""

from __future__ import annotations

import sys

import pytest

from repro.cli import main


def _run(argv, capsys):
    """Invoke the CLI; normalize SystemExit to a return code and capture
    both streams."""
    try:
        code = main(argv)
    except SystemExit as e:
        code = e.code
        if isinstance(code, str):
            # SystemExit("message") convention: message goes to stderr,
            # exit status becomes 1 (what the interpreter itself does)
            print(code, file=sys.stderr)
            code = 1
    out = capsys.readouterr()
    return code, out.out, out.err


def _assert_one_line_diag(err: str):
    lines = [ln for ln in err.strip().splitlines() if ln]
    assert lines, "expected a diagnostic on stderr"
    assert "Traceback" not in err
    assert all("File \"" not in ln for ln in lines)


def test_unknown_workload_name(capsys):
    code, _out, err = _run(["run", "NoSuchWorkload"], capsys)
    assert code != 0
    _assert_one_line_diag(err)
    assert "NoSuchWorkload" in err


def test_verify_unknown_workload_name(capsys):
    code, _out, err = _run(["verify", "NoSuchWorkload"], capsys)
    assert code != 0
    _assert_one_line_diag(err)


def test_verify_checker_failing_program(tmp_path, capsys):
    bad = tmp_path / "bad.c"
    bad.write_text("int x = 1;\nint main() { return 0; }\n")
    code, _out, err = _run(["verify", str(bad)], capsys)
    assert code == 2
    _assert_one_line_diag(err)
    assert err.startswith("repro: ")
    assert "bad" in err  # names the offending file


def test_verify_trace_missing_file(tmp_path, capsys):
    code, _out, err = _run(
        ["verify", "--trace", str(tmp_path / "nope.npz")], capsys
    )
    assert code == 2
    _assert_one_line_diag(err)
    assert "does not exist" in err


def test_verify_trace_corrupt_npz(tmp_path, capsys):
    corrupt = tmp_path / "corrupt.npz"
    corrupt.write_bytes(b"PK\x03\x04 this is not a real npz payload")
    code, _out, err = _run(["verify", "--trace", str(corrupt)], capsys)
    assert code == 2
    _assert_one_line_diag(err)
    assert "not a usable cache entry" in err


def test_verify_trace_npz_missing_meta(tmp_path, capsys):
    import numpy as np

    bogus = tmp_path / "bogus.npz"
    np.savez_compressed(bogus, proc=np.zeros(4, dtype=np.int32))
    code, _out, err = _run(["verify", "--trace", str(bogus)], capsys)
    assert code == 2
    _assert_one_line_diag(err)


def test_verify_bad_budget(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["verify", "--budget", "soon"])
    msg = str(ei.value.code)
    assert "--budget" in msg
    assert "Traceback" not in msg


def test_verify_single_program_success(tmp_path, capsys):
    """Control: a well-formed program exits 0 and reports agreement."""
    from conftest import COUNTER_SRC

    ok = tmp_path / "ok.c"
    ok.write_text(COUNTER_SRC)
    code, out, _err = _run(["verify", str(ok), "-p", "2"], capsys)
    assert code == 0
    assert "agree" in out
