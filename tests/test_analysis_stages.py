"""Tests for the three analysis stages: per-process control flow,
non-concurrency (barrier phases), and static profiling."""

import pytest

from repro.analysis import (
    MAIN_PROC,
    analyze_phases,
    compute_proc_sets,
    compute_profile,
    detect_pdvs,
    eval_cond_for_pid,
)
from repro.errors import AnalysisError
from repro.ir import build_callgraph
from repro.lang import astnodes as A
from repro.lang import compile_source
from repro.rsd.expr import Affine


def setup(src: str, nprocs: int = 8):
    checked = compile_source(src)
    cg = build_callgraph(checked)
    pdv = detect_pdvs(checked, cg, nprocs)
    return checked, cg, pdv


WORKER_TMPL = """
int a[64];
int master_only;
void w(int pid)
{{
{body}
}}
int main()
{{
    int p;
    for (p = 0; p < nprocs(); p++) {{ create(w, p); }}
    wait_for_end();
    return 0;
}}
"""


class TestPerProcess:
    def test_eval_cond(self):
        checked, cg, pdv = setup(WORKER_TMPL.format(body="    a[pid] = 1;"))
        bindings = {"pid": Affine.pdv()}
        from repro.lang.parser import parse_expression

        cond = parse_expression("pid == 0")
        assert eval_cond_for_pid(cond, 0, bindings, {}, 8) is True
        assert eval_cond_for_pid(cond, 3, bindings, {}, 8) is False
        cond2 = parse_expression("pid < 4 && pid != 2")
        assert eval_cond_for_pid(cond2, 1, bindings, {}, 8) is True
        assert eval_cond_for_pid(cond2, 2, bindings, {}, 8) is False
        assert eval_cond_for_pid(cond2, 6, bindings, {}, 8) is False

    def test_branch_annotation(self):
        src = WORKER_TMPL.format(
            body="    if (pid == 0) { master_only = 1; } else { a[pid] = 2; }"
        )
        checked, cg, pdv = setup(src)
        sets = compute_proc_sets(checked, cg, pdv, 8)
        w = checked.program.func("w")
        branch = w.body.body[0]
        assert isinstance(branch, A.If)
        then_set = sets.sets["w"][id(branch.then)]
        else_set = sets.sets["w"][id(branch.orelse)]
        assert then_set == frozenset({0})
        assert else_set == frozenset(range(1, 8))

    def test_undecidable_condition_keeps_all(self):
        src = WORKER_TMPL.format(
            body="    if (a[0] > 3) { a[pid] = 1; }"
        )
        checked, cg, pdv = setup(src)
        sets = compute_proc_sets(checked, cg, pdv, 8)
        w = checked.program.func("w")
        branch = w.body.body[0]
        assert sets.sets["w"][id(branch.then)] == frozenset(range(8))

    def test_main_is_pseudo_process(self, counter_checked):
        cg = build_callgraph(counter_checked)
        pdv = detect_pdvs(counter_checked, cg, 4)
        sets = compute_proc_sets(counter_checked, cg, pdv, 4)
        assert sets.entry["main"] == frozenset({MAIN_PROC})
        assert sets.entry["worker"] == frozenset(range(4))

    def test_helper_inherits_caller_sets(self):
        src = """
        int a[64];
        void helper(int x) { a[x] = 1; }
        void w(int pid)
        {
            if (pid == 0) { helper(pid); }
        }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            return 0;
        }
        """
        checked, cg, pdv = setup(src)
        sets = compute_proc_sets(checked, cg, pdv, 8)
        assert sets.entry["helper"] == frozenset({0})


class TestNonConcurrency:
    def test_phase_count(self, counter_checked):
        cg = build_callgraph(counter_checked)
        phases = analyze_phases(counter_checked, cg)
        assert phases.worker_phases["worker"] == 2

    def test_phases_advance_in_order(self):
        src = WORKER_TMPL.format(
            body="    a[pid] = 1;\n    barrier();\n    a[pid] = 2;\n"
            "    barrier();\n    a[pid] = 3;"
        )
        checked, cg, _ = setup(src)
        phases = analyze_phases(checked, cg)
        w = checked.program.func("w")
        stmts = w.body.body
        offs = [phases.phase_of("w", s) for s in stmts if not isinstance(s, A.ExprStmt)]
        assert offs == [0, 1, 2]
        assert phases.worker_phases["w"] == 3

    def test_barrier_in_callee_counts(self):
        src = """
        int a[64];
        void sync_step(int x) { a[x] = x; barrier(); }
        void w(int pid)
        {
            a[pid] = 0;
            sync_step(pid);
            a[pid] = 1;
        }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            return 0;
        }
        """
        checked, cg, _ = setup(src)
        phases = analyze_phases(checked, cg)
        assert phases.barrier_counts["sync_step"] == 1
        w = checked.program.func("w")
        last = w.body.body[-1]
        assert phases.phase_of("w", last) == 1

    def test_barrier_loop_records_cycle(self):
        src = WORKER_TMPL.format(
            body="    int r;\n    for (r = 0; r < 3; r++) {\n"
            "        a[pid] = r;\n        barrier();\n    }"
        )
        checked, cg, _ = setup(src)
        phases = analyze_phases(checked, cg)
        assert phases.cyclic_groups

    def test_divergent_barrier_rejected(self):
        src = WORKER_TMPL.format(
            body="    if (pid == 0) { barrier(); }"
        )
        checked, cg, _ = setup(src)
        with pytest.raises(AnalysisError, match="barrier"):
            analyze_phases(checked, cg)

    def test_balanced_conditional_barriers_allowed(self):
        src = WORKER_TMPL.format(
            body="    if (pid == 0) { barrier(); } else { barrier(); }"
        )
        checked, cg, _ = setup(src)
        phases = analyze_phases(checked, cg)
        assert phases.worker_phases["w"] == 2


class TestProfiling:
    def test_exact_loop_trip_counts(self, counter_checked):
        cg = build_callgraph(counter_checked)
        pdv = detect_pdvs(counter_checked, cg, 8)
        prof = compute_profile(counter_checked, cg, pdv, 8)
        w = counter_checked.program.func("worker")
        loop = w.body.body[1]  # the for loop (after the VarDecl)
        assert isinstance(loop, A.For)
        body_first = loop.body.body[0]
        assert prof.local_weight("worker", body_first) == 40.0

    def test_branch_probability(self):
        src = WORKER_TMPL.format(
            body="    if (a[0] > 1) { a[pid] = 1; }"
        )
        checked, cg, pdv = setup(src)
        prof = compute_profile(checked, cg, pdv, 8)
        w = checked.program.func("w")
        branch = w.body.body[0]
        assert prof.local_weight("w", branch.then) == 0.5

    def test_pdv_branch_not_discounted(self):
        src = WORKER_TMPL.format(
            body="    if (pid == 0) { a[pid] = 1; }"
        )
        checked, cg, pdv = setup(src)
        prof = compute_profile(checked, cg, pdv, 8)
        w = checked.program.func("w")
        branch = w.body.body[0]
        assert prof.local_weight("w", branch.then) == 1.0

    def test_interprocedural_entry_counts(self):
        src = """
        int a[4];
        void leaf(int x) { a[x % 4] = x; }
        void w(int pid)
        {
            int i;
            for (i = 0; i < 10; i++) { leaf(i); }
        }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            return 0;
        }
        """
        checked, cg, pdv = setup(src)
        prof = compute_profile(checked, cg, pdv, 8)
        assert prof.entry["leaf"] == 10.0  # per worker entry
        assert prof.entry["w"] == 1.0

    def test_while_uses_default_trips(self):
        from repro.analysis import DEFAULT_TRIPS

        src = WORKER_TMPL.format(
            body="    int i;\n    i = 0;\n    while (a[i] < 5) {\n"
            "        a[pid] = i;\n        i = i + 1;\n    }"
        )
        checked, cg, pdv = setup(src)
        prof = compute_profile(checked, cg, pdv, 8)
        w = checked.program.func("w")
        loop = [s for s in w.body.body if isinstance(s, A.While)][0]
        inner = loop.body.body[0]
        assert prof.local_weight("w", inner) == DEFAULT_TRIPS
