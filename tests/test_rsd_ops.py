"""RSD algebra: projection, merging, disjointness (with brute-force
cross-checks via hypothesis)."""

from hypothesis import given, strategies as st

from repro.rsd import (
    Affine,
    PDV,
    Point,
    RSD,
    Range,
    UNKNOWN,
    add_descriptor,
    ap_intersect,
    disjoint_across_pdv,
    merge_elems,
    owner_of,
    project_loops,
    sections_intersect,
)
from repro.rsd.descriptor import StridedUnknown
from repro.rsd.ops import MAX_DESCRIPTORS


def ap_set(lo, hi, stride):
    return set(range(lo, hi + 1, stride)) if lo <= hi else set()


class TestAPIntersect:
    @given(
        st.integers(0, 60), st.integers(0, 60), st.integers(1, 8),
        st.integers(0, 60), st.integers(0, 60), st.integers(1, 8),
    )
    def test_matches_brute_force(self, lo1, span1, s1, lo2, span2, s2):
        a = (lo1, lo1 + span1, s1)
        b = (lo2, lo2 + span2, s2)
        expected = bool(ap_set(*a) & ap_set(*b))
        assert ap_intersect(a, b) == expected

    def test_disjoint_residues(self):
        assert not ap_intersect((0, 100, 4), (1, 101, 4))

    def test_common_element(self):
        assert ap_intersect((0, 12, 3), (4, 20, 5))  # hits 9? 0,3,6,9,12 & 4,9,14 -> 9


class TestProjection:
    def test_plain_loop(self):
        e = project_loops(
            Affine.var("i"), {"i": (Affine.constant(0), Affine.constant(9), 1)}
        )
        assert isinstance(e, Range) and e.stride == 1
        assert e.instantiate(0) == (0, 9, 1)

    def test_blocked_partition(self):
        idx = Affine.pdv(16) + Affine.var("i")
        e = project_loops(idx, {"i": (Affine.constant(0), Affine.constant(15), 1)})
        assert isinstance(e, Range)
        assert e.instantiate(2) == (32, 47, 1)

    def test_scaled_stride(self):
        e = project_loops(
            Affine.var("i", 4),
            {"i": (Affine.constant(0), Affine.constant(7), 1)},
        )
        assert isinstance(e, Range) and e.stride == 4

    def test_negative_coefficient(self):
        e = project_loops(
            -Affine.var("i"),
            {"i": (Affine.constant(0), Affine.constant(5), 1)},
        )
        assert isinstance(e, Range)
        assert e.instantiate(0) == (-5, 0, 1)

    def test_unbound_loop_var_unknown(self):
        assert project_loops(Affine.var("i"), {}) == UNKNOWN

    def test_no_loops_gives_point(self):
        e = project_loops(Affine.pdv() + 2, {})
        assert isinstance(e, Point)

    def test_opaque_symbol_gives_strided_unknown(self):
        idx = Affine.var("@offset") + Affine.var("i")
        e = project_loops(
            idx, {"i": (Affine.constant(0), Affine.constant(9), 1)}
        )
        assert isinstance(e, StridedUnknown) and e.stride == 1

    def test_opaque_point_is_unknown(self):
        assert project_loops(Affine.var("@offset"), {}) == UNKNOWN


class TestDisjointness:
    def test_point_pdv(self):
        assert disjoint_across_pdv(RSD((Point(Affine.pdv()),)), 8)

    def test_blocked(self):
        r = RSD((Range(Affine.pdv(16), Affine.pdv(16) + 15, 1),))
        assert disjoint_across_pdv(r, 8)

    def test_cyclic(self):
        r = RSD((Range(Affine.pdv(), Affine.constant(99), 8),))
        assert disjoint_across_pdv(r, 8)
        assert not disjoint_across_pdv(r, 16)

    def test_full_range_not_disjoint(self):
        r = RSD((Range(Affine.constant(0), Affine.constant(99), 1),))
        assert not disjoint_across_pdv(r, 8)

    def test_unknown_not_disjoint(self):
        assert not disjoint_across_pdv(RSD((UNKNOWN,)), 4)
        assert not disjoint_across_pdv(RSD((StridedUnknown(1),)), 4)

    def test_multidim_one_disjoint_dim_suffices(self):
        r = RSD((Range(Affine.constant(0), Affine.constant(9), 1),
                 Point(Affine.pdv())))
        assert disjoint_across_pdv(r, 4)

    @given(st.integers(2, 12), st.integers(1, 6))
    def test_blocked_always_disjoint(self, nprocs, chunk):
        r = RSD((Range(Affine.pdv(chunk), Affine.pdv(chunk) + chunk - 1, 1),))
        assert disjoint_across_pdv(r, nprocs)


class TestOwnerAndOverlap:
    def test_owner_of_blocked(self):
        r = RSD((Range(Affine.pdv(16), Affine.pdv(16) + 15, 1),))
        assert owner_of(r, (37,), 8) == 2
        assert owner_of(r, (1000,), 8) is None

    def test_owner_of_cyclic(self):
        r = RSD((Range(Affine.pdv(), Affine.constant(99), 8),))
        assert owner_of(r, (17,), 8) == 1

    def test_sections_intersect_conservative_on_unknown(self):
        assert sections_intersect(RSD((UNKNOWN,)), 0, RSD((UNKNOWN,)), 1)


class TestMerge:
    def test_identical_lossless(self):
        e = Range(Affine.pdv(4), Affine.pdv(4) + 3, 1)
        merged, loss = merge_elems(e, e)
        assert merged == e and loss == 0.0

    def test_adjacent_points(self):
        merged, loss = merge_elems(Point(Affine.constant(0)), Point(Affine.constant(1)))
        assert isinstance(merged, Range) and loss == 0.0

    def test_different_pdv_coeff_unknown(self):
        merged, loss = merge_elems(Point(Affine.pdv()), Point(Affine.pdv(2)))
        assert merged == UNKNOWN and loss == 1.0

    def test_merged_superset_property(self):
        a = Range(Affine.constant(0), Affine.constant(10), 2)
        b = Range(Affine.constant(5), Affine.constant(15), 5)
        merged, _ = merge_elems(a, b)
        assert isinstance(merged, Range)
        got = ap_set(*merged.instantiate(0))
        assert ap_set(0, 10, 2) <= got and ap_set(5, 15, 5) <= got

    def test_strided_unknown_merge_keeps_stride(self):
        merged, _ = merge_elems(StridedUnknown(4), StridedUnknown(6))
        assert isinstance(merged, StridedUnknown) and merged.stride == 2

    def test_add_descriptor_caps_list(self):
        descs = []
        for k in range(MAX_DESCRIPTORS + 5):
            add_descriptor(descs, RSD((Point(Affine.constant(k * 100)),)), 1.0)
        assert len(descs) <= MAX_DESCRIPTORS

    def test_add_descriptor_merges_identical(self):
        descs = []
        r = RSD((Point(Affine.pdv()),))
        add_descriptor(descs, r, 1.0)
        add_descriptor(descs, r, 2.0)
        assert len(descs) == 1 and descs[0][1] == 3.0
