"""Workload suite tests: every benchmark compiles, analyzes to the
expected transformation mix, runs identically under all layouts, and
loses false sharing under the compiler plan.

These run at 6 processors (not the paper's 12) to keep the suite fast;
the full-size experiments live in benchmarks/.
"""

import pytest

from repro.workloads import (
    ALL_WORKLOADS,
    SIMULATION_WORKLOADS,
    by_name,
    table1_rows,
)

NPROCS = 6

_KIND_ATTR = {
    "group_transpose": "group",
    "indirection": "indirections",
    "pad_align": "pads",
    "locks": "lock_pads",
}


@pytest.fixture(scope="module")
def pipes():
    return {wl.name: wl.pipeline() for wl in ALL_WORKLOADS}


class TestRegistry:
    def test_ten_workloads(self):
        assert len(ALL_WORKLOADS) == 10

    def test_six_have_unoptimized_versions(self):
        assert len(SIMULATION_WORKLOADS) == 6

    def test_by_name(self):
        assert by_name("maxflow").name == "Maxflow"
        with pytest.raises(KeyError):
            by_name("nope")

    def test_table1_matches_paper(self):
        rows = {r["program"]: r for r in table1_rows()}
        assert rows["Maxflow"]["lines_of_c"] == 810
        assert rows["Raytrace"]["lines_of_c"] == 12391
        assert rows["Water"]["versions"] == "C P"
        assert rows["Pverify"]["versions"] == "N C P"

    def test_topopt_runs_nine_processors(self):
        assert by_name("topopt").fig3_procs == 9
        assert all(
            w.fig3_procs == 12 for w in ALL_WORKLOADS if w.name != "Topopt"
        )


@pytest.mark.parametrize("wl", ALL_WORKLOADS, ids=lambda w: w.name)
class TestEachWorkload:
    def test_compiles_and_plans(self, wl, pipes):
        pipe = pipes[wl.name]
        plan = pipe.compiler_plan(NPROCS)
        got = {
            kind for kind, attr in _KIND_ATTR.items() if getattr(plan, attr)
        }
        for expected in wl.expected_transforms:
            assert expected in got, (
                f"{wl.name}: expected {expected}, plan has {sorted(got)}"
            )

    def test_outputs_invariant_across_versions(self, wl, pipes):
        pipe = pipes[wl.name]
        outs = [pipe.run_unoptimized(NPROCS).run.output,
                pipe.run_compiler(NPROCS).run.output]
        if wl.programmer_plan is not None:
            outs.append(wl.run_version(pipe, "P", NPROCS).run.output)
        assert all(o == outs[0] for o in outs)
        assert outs[0], f"{wl.name} produced no output"

    def test_compiler_reduces_false_sharing(self, wl, pipes):
        pipe = pipes[wl.name]
        fs_n = pipe.run_unoptimized(NPROCS).simulate(128).misses.false_sharing
        fs_c = pipe.run_compiler(NPROCS).simulate(128).misses.false_sharing
        assert fs_n > 0, f"{wl.name} N version exhibits no false sharing"
        assert fs_c < fs_n, f"{wl.name}: compiler did not reduce FS"


class TestPaperSpecifics:
    def test_maxflow_has_no_group_or_indirection(self, pipes):
        plan = pipes["Maxflow"].compiler_plan(NPROCS)
        assert not plan.group and not plan.indirections

    def test_pverify_indirection_dominant(self, pipes):
        plan = pipes["Pverify"].compiler_plan(NPROCS)
        assert len(plan.indirections) >= 2

    def test_topopt_board_untransformed(self, pipes):
        plan = pipes["Topopt"].compiler_plan(NPROCS)
        touched = {m.base for m in plan.group} | {p.base for p in plan.pads}
        assert "board" not in touched

    def test_raytrace_residual_stats_untransformed(self, pipes):
        plan = pipes["Raytrace"].compiler_plan(NPROCS)
        touched = {m.base for m in plan.group} | {p.base for p in plan.pads}
        assert "raystats" not in touched

    def test_maxflow_residual_stats_untransformed(self, pipes):
        plan = pipes["Maxflow"].compiler_plan(NPROCS)
        touched = {m.base for m in plan.group} | {p.base for p in plan.pads}
        assert "hotstats" not in touched

    def test_programmer_plans_weaker_than_compiler(self, pipes):
        # the documented mistakes: P misses transformations C applies
        for name in ("Pverify", "Water", "Pthor", "Mp3d"):
            wl = by_name(name)
            pipe = pipes[name]
            cplan = pipe.compiler_plan(NPROCS)
            pplan = wl.programmer_plan(pipe.analysis(NPROCS))
            c_count = (
                len(cplan.group) + len(cplan.indirections)
                + len(cplan.pads) + len(cplan.lock_pads)
            )
            p_count = (
                len(pplan.group) + len(pplan.indirections)
                + len(pplan.pads) + len(pplan.lock_pads)
            )
            assert p_count < c_count, name
