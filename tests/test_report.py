"""Analysis-report rendering tests, including the paper's
analysis-vs-simulation validation loop."""

from repro.analysis import analysis_report, analyze_program, validation_report
from repro.harness import Pipeline
from repro.lang import compile_source
from repro.sim import attribute_misses
from repro.transform import decide_transformations

from conftest import COUNTER_SRC, HEAP_SRC


class TestAnalysisReport:
    def test_sections_present(self):
        pa = analyze_program(compile_source(COUNTER_SRC), 4)
        plan = decide_transformations(pa)
        text = analysis_report(pa, plan)
        assert "workers (PDV): {'worker': 'pid'}" in text
        assert "counter" in text and "pdv-disjoint" in text
        assert "decision log:" in text

    def test_without_plan(self):
        pa = analyze_program(compile_source(COUNTER_SRC), 4)
        text = analysis_report(pa)
        assert "decision log" not in text
        assert "access patterns" in text


class TestValidationLoop:
    """The paper's methodology: check that the structures the analysis
    transforms are the ones the simulation blames for false sharing."""

    def _coverage(self, src: str, nprocs: int = 8) -> float:
        pipe = Pipeline(src)
        pa = pipe.analysis(nprocs)
        plan = pipe.compiler_plan(nprocs)
        vn = pipe.run_unoptimized(nprocs)
        sim = vn.simulate(128)
        fs = {
            name: rec.false_sharing
            for name, rec in attribute_misses(sim, vn.regions()).items()
        }
        text = validation_report(pa, plan, fs)
        assert "analysis covers" in text
        covered_line = text.splitlines()[-1]
        return float(covered_line.split("covers ")[1].split("%")[0])

    def test_counter_program_fully_covered(self):
        assert self._coverage(COUNTER_SRC) > 90.0

    def test_heap_program_covered(self):
        assert self._coverage(HEAP_SRC) > 60.0

    def test_maxflow_residual_visible(self):
        from repro.workloads import MAXFLOW

        pipe = MAXFLOW.pipeline()
        pa = pipe.analysis(8)
        plan = pipe.compiler_plan(8)
        vn = pipe.run_unoptimized(8)
        # attribute at 32-byte granularity so the statistics array gets
        # its own blocks (at 128 B it shares a block with the lock array)
        sim = vn.simulate(32)
        fs = {
            name: rec.false_sharing
            for name, rec in attribute_misses(sim, vn.regions()).items()
        }
        text = validation_report(pa, plan, fs)
        # hotstats is deliberately untransformed: it must show as residual
        assert "RESIDUAL hotstats" in text
