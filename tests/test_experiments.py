"""Experiment-driver tests on a reduced configuration (two workloads,
small processor counts) — the full-size runs live in benchmarks/."""

import pytest

from repro.harness import (
    WorkloadLab,
    figure3,
    headline,
    render_figure3,
    render_headline,
    render_scalability,
    render_table1,
    render_table2,
    render_table3,
    scalability,
    table1,
    table2,
    table3,
)
from repro.workloads import by_name

SMALL = (by_name("Radiosity"), by_name("Raytrace"))


@pytest.fixture(scope="module")
def lab():
    return WorkloadLab()


class TestTable1:
    def test_rows(self):
        rows = table1()
        assert len(rows) == 10
        assert rows[0]["program"] == "Maxflow"
        text = render_table1(rows)
        assert "Maxflow" in text and "810" in text


class TestFigure3:
    def test_shapes(self, lab):
        res = figure3(SMALL, block_sizes=(16, 128), lab=lab)
        assert {r.program for r in res.rows} == {"Radiosity", "Raytrace"}
        for row in res.rows:
            for cell in row.cells.values():
                assert 0.0 <= cell.fs_rate <= cell.miss_rate <= 1.0
            # compiler reduces the FS portion at 128B
            assert (
                row.cells[(128, "C")].fs_rate
                < row.cells[(128, "N")].fs_rate
            )
        text = render_figure3(res)
        assert "Radiosity" in text

    def test_records_manifest_per_grid_point(self, lab, tmp_path,
                                             monkeypatch):
        """With REPRO_RUN_LOG set, every simulated (workload, version,
        block size) cell lands in the manifest as one schema-2 record —
        the experiment drivers' feed into the run-record store."""
        from repro.obs import manifest

        log = tmp_path / "runs.jsonl"
        monkeypatch.setenv(manifest.RUN_LOG_ENV, str(log))
        figure3((SMALL[0],), block_sizes=(16, 128), lab=lab)
        recs = manifest.read_all(log)
        assert len(recs) == 4  # 2 versions x 2 block sizes
        assert {r["workload"] for r in recs} == {
            "Radiosity/N", "Radiosity/C"
        }
        for rec in recs:
            assert rec["schema"] == manifest.SCHEMA
            assert rec["kind"] == "experiment"
            assert rec["kernel"] in ("native", "python")
            assert rec["block_size"] in (16, 128)
            assert rec["misses"]["false"] >= 0
            assert rec["fs_by_structure"]  # attribution came along

    def test_fs_portion_grows_with_block_size(self, lab):
        res = figure3(SMALL, block_sizes=(16, 128), lab=lab)
        for row in res.rows:
            assert (
                row.cells[(128, "N")].fs_rate
                >= row.cells[(16, "N")].fs_rate * 0.8
            )


class TestTable2:
    def test_attribution_sums_to_total(self, lab):
        res = table2(SMALL, block_sizes=(32, 128), lab=lab)
        for row in res.rows:
            assert 0.0 <= row.total_reduction <= 100.0
            contrib = sum(row.by_transform.values())
            assert contrib == pytest.approx(row.total_reduction, abs=0.5)
        text = render_table2(res)
        assert "Radiosity" in text

    def test_dominant_transform_matches_paper(self, lab):
        res = table2(SMALL, block_sizes=(32, 128), lab=lab)
        row = res.row("Radiosity")
        dominant = max(row.by_transform, key=row.by_transform.get)
        assert dominant == "group_transpose"


class TestScalability:
    def test_curves_and_table3(self, lab):
        procs = (1, 2, 4)
        sc = scalability(by_name("Radiosity"), procs, lab)
        assert set(sc.curves) == {"N", "C", "P"}
        for curve in sc.curves.values():
            assert curve.points[1] == pytest.approx(
                sc.curves["N"].points[1], rel=0.5
            )
        text = render_scalability(sc)
        assert "Radiosity" in text

        rows = table3(SMALL, procs, lab)
        assert len(rows) == 2
        for row in rows:
            for v, (s, at) in row.results.items():
                assert s > 0 and at in procs
        assert "paper" in render_table3(rows)

    def test_cp_only_workload_has_no_n_curve(self, lab):
        sc = scalability(by_name("Water"), (1, 2), lab)
        assert "N" not in sc.curves
        assert set(sc.curves) == {"C", "P"}


class TestHeadline:
    def test_stats_sane(self, lab):
        stats = headline(SMALL, lab=lab)
        assert 0.0 < stats.fs_fraction_of_misses < 1.0
        assert 0.0 < stats.fs_eliminated <= 1.0
        assert stats.total_miss_reduction_128 > 0.0
        assert "paper" in render_headline(stats)


class TestImprovements:
    def test_c_improves_over_n_in_scaling_range(self, lab):
        from repro.harness import improvements

        rows = improvements(SMALL, proc_counts=(1, 2, 4, 8), lab=lab)
        assert {r.program for r in rows} == {"Radiosity", "Raytrace"}
        for r in rows:
            assert r.by_procs, r.program
            assert r.max_improvement > 0.0, r.program
