"""CLI surface of the tuner: ``repro tune``, ``repro transforms
--explain``, and ``repro verify --plan-space``."""

import json

import pytest

from repro.cli import main
from repro.obs import spans as obs

from conftest import COUNTER_SRC


@pytest.fixture(autouse=True)
def _obs_reset():
    yield
    obs.reset()
    obs.disable()


@pytest.fixture()
def src_file(tmp_path):
    f = tmp_path / "prog.pc"
    f.write_text(COUNTER_SRC)
    return str(f)


class TestTuneCommand:
    def test_smoke(self, capsys):
        assert main(
            ["tune", "Raytrace", "-p", "4", "--top", "2", "--budget", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "tune Raytrace" in out
        assert "heuristic" in out and "tuned best" in out
        assert "Pareto front" in out

    def test_source_file_input(self, src_file, capsys):
        assert main(
            ["tune", src_file, "-p", "4", "--top", "2", "--budget", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "FS misses" in out

    def test_bench_out(self, tmp_path, capsys):
        bench = str(tmp_path / "BENCH_tune.json")
        assert main(
            [
                "tune", "Raytrace", "-p", "4", "--top", "2",
                "--budget", "16", "--bench-out", bench,
            ]
        ) == 0
        points = json.loads(open(bench).read())
        assert len(points) == 1
        assert points[0]["workload"] == "Raytrace"
        assert points[0]["tuned_fs"] <= points[0]["heuristic_fs"]

    def test_strategy_beam(self, capsys):
        assert main(
            [
                "tune", "Raytrace", "-p", "4", "--top", "2",
                "--budget", "16", "--strategy", "beam",
                "--objective", "fs,total",
            ]
        ) == 0
        assert "strategy=beam" in capsys.readouterr().out

    def test_bad_objective_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "tune", "Raytrace", "-p", "4",
                    "--objective", "fs,latency",
                ]
            )


class TestTransformsExplain:
    def test_explain_renders_gates(self, src_file, capsys):
        assert main(["transforms", src_file, "-p", "4", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "TransformPlan" in out
        assert "counter: group_transpose" in out
        assert "[+]" in out  # gate verdict markers
        assert "weight " in out
        assert "untransformed structures hidden" in out

    def test_explain_verbose_shows_rejections(self, src_file, capsys):
        assert main(
            ["transforms", src_file, "-p", "4", "--explain", "-v"]
        ) == 0
        out = capsys.readouterr().out
        assert "rejected" in out
        assert "hidden" not in out

    def test_without_explain_lists_decisions(self, src_file, capsys):
        assert main(["transforms", src_file, "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "locks are always padded" in out
        assert "[+]" not in out


class TestVerifyPlanSpace:
    def test_fuzz_draws_plans_from_space(self, capsys):
        assert main(
            ["verify", "--count", "2", "--seed", "0", "--plan-space"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 programs" in out
        assert "ok" in out
