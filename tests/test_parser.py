"""Unit tests for the parser."""

import pytest

from repro.errors import ParseError
from repro.lang import astnodes as A
from repro.lang import ctypes as T
from repro.lang.parser import parse, parse_expression
from repro.lang.printer import format_expr


def parse_one_func(body: str, decls: str = "") -> A.FuncDef:
    prog = parse(decls + "\nvoid f()\n{\n" + body + "\n}\n")
    fn = prog.func("f")
    assert fn is not None
    return fn


class TestTopLevel:
    def test_globals_and_functions(self):
        prog = parse("int a; double b[4]; void f() { }")
        assert [g.name for g in prog.globals] == ["a", "b"]
        assert isinstance(prog.globals[1].type, T.ArrayType)
        assert prog.func("f") is not None

    def test_multi_declarators(self):
        prog = parse("int a, b[2], *c;")
        assert [g.name for g in prog.globals] == ["a", "b", "c"]
        assert isinstance(prog.globals[2].type, T.PointerType)

    def test_struct_definition_and_layout(self):
        prog = parse("struct p { int x; double y; }; struct p q;")
        ty = prog.globals[0].type
        assert isinstance(ty, T.StructType)
        assert ty.field("x").offset == 0
        assert ty.field("y").offset == 8  # aligned
        assert ty.size == 16

    def test_forward_struct_reference_via_pointer(self):
        prog = parse(
            "struct a { struct b *next; }; struct b { int v; }; struct a x;"
        )
        ty = prog.globals[0].type
        nxt = ty.field("next").type
        assert isinstance(nxt, T.PointerType)
        assert isinstance(nxt.target, T.StructType)
        assert nxt.target.name == "b"

    def test_undefined_struct_rejected(self):
        with pytest.raises(ParseError):
            parse("struct a { struct nope *next; }; int main() { return 0; }")

    def test_duplicate_struct_rejected(self):
        with pytest.raises(ParseError):
            parse("struct a { int x; }; struct a { int y; };")

    def test_function_params(self):
        prog = parse("int f(int a, double *b) { return a; }")
        fn = prog.func("f")
        assert [p.name for p in fn.params] == ["a", "b"]
        assert isinstance(fn.params[1].type, T.PointerType)

    def test_multidim_array(self):
        prog = parse("int g[4][8];")
        ty = prog.globals[0].type
        assert ty.dims == (4, 8)
        assert ty.size == 4 * 8 * 4


class TestStatements:
    def test_if_else_chain(self):
        fn = parse_one_func("if (1) { } else if (2) { } else { }")
        stmt = fn.body.body[0]
        assert isinstance(stmt, A.If)
        assert isinstance(stmt.orelse, A.If)

    def test_for_with_empty_parts(self):
        fn = parse_one_func("for (;;) { break; }")
        stmt = fn.body.body[0]
        assert isinstance(stmt, A.For)
        assert stmt.init is None and stmt.cond is None and stmt.update is None

    def test_increment_sugar(self):
        fn = parse_one_func("int i; i = 0; i++; i--;")
        incr = fn.body.body[2]
        assert isinstance(incr, A.Assign) and incr.op == "+"
        decr = fn.body.body[3]
        assert decr.op == "-"

    def test_compound_assignment(self):
        fn = parse_one_func("int i; i = 0; i += 2; i *= 3;")
        assert fn.body.body[2].op == "+"
        assert fn.body.body[3].op == "*"

    def test_assignment_target_must_be_lvalue(self):
        with pytest.raises(ParseError):
            parse_one_func("1 = 2;")

    def test_while_and_nested_blocks(self):
        fn = parse_one_func("while (1) { { continue; } }")
        w = fn.body.body[0]
        assert isinstance(w, A.While)

    def test_return_forms(self):
        fn = parse_one_func("if (1) { return; } return;")
        assert isinstance(fn.body.body[-1], A.Return)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, A.BinOp) and e.op == "+"
        assert isinstance(e.right, A.BinOp) and e.right.op == "*"

    def test_precedence_cmp_over_logic(self):
        e = parse_expression("a < b && c > d")
        assert e.op == "&&"
        assert e.left.op == "<" and e.right.op == ">"

    def test_parentheses(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_left_associativity(self):
        e = parse_expression("a - b - c")
        assert e.op == "-" and e.left.op == "-"

    def test_unary_chain(self):
        e = parse_expression("-!x")
        assert e.op == "-" and e.operand.op == "!"

    def test_postfix_chain(self):
        e = parse_expression("a[1].f->g[2]")
        assert isinstance(e, A.Index)
        assert isinstance(e.base, A.Member) and e.base.arrow

    def test_call_with_args(self):
        e = parse_expression("f(a, 1 + 2)")
        assert isinstance(e, A.Call) and len(e.args) == 2

    def test_alloc_forms(self):
        e = parse_expression("alloc(struct foo)")
        # struct foo is pending; type_name keeps the spelling
        assert isinstance(e, A.Alloc) and e.count is None
        e2 = parse_expression("alloc_array(int, n * 2)")
        assert isinstance(e2, A.Alloc) and e2.count is not None
        assert e2.type_name == "int"

    def test_address_of_and_deref(self):
        e = parse_expression("&a[0]")
        assert isinstance(e, A.UnOp) and e.op == "&"
        e2 = parse_expression("*p")
        assert e2.op == "*"

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a b")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f() { int x = 1 }")

    def test_roundtrip_through_printer(self):
        for text in ("a + b * c", "a[i]->f.g", "f(x, y % 3)", "-(a - 2)"):
            again = format_expr(parse_expression(text))
            assert parse_expression(again) is not None
