"""Observability layer tests: span tracing, Chrome trace export, run
manifests, and the parallel lab's counter/span merging."""

import json

import pytest

from repro import perf
from repro.obs import chrome, manifest
from repro.obs import spans as obs


@pytest.fixture()
def tracing():
    """Span tracing on for one test, fully restored afterwards."""
    obs.enable()
    obs.reset()
    yield
    obs.reset()
    obs.disable()


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_disabled_is_noop(self):
        obs.disable()
        obs.reset()
        with obs.span("nope", detail=1) as sp:
            assert sp is None
        assert obs.roots() == []

    def test_nesting_and_duration(self, tracing):
        with obs.span("outer", kind="test"):
            with obs.span("inner.a"):
                pass
            with obs.span("inner.b"):
                pass
        roots = obs.roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner.a", "inner.b"]
        assert roots[0].dur >= sum(c.dur for c in roots[0].children) >= 0.0
        assert roots[0].meta == {"kind": "test"}

    def test_counter_deltas(self, tracing):
        perf.reset()
        perf.add("outside", 7)
        with obs.span("stage"):
            perf.add("inside", 3)
        (sp,) = obs.roots()
        assert sp.counters == {"inside": 3.0}

    def test_exception_recorded_and_stack_popped(self, tracing):
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("x")
        (sp,) = obs.roots()
        assert sp.meta["error"] == "ValueError"
        with obs.span("after"):
            pass
        assert [r.name for r in obs.roots()] == ["boom", "after"]

    def test_snapshot_roundtrip(self, tracing):
        with obs.span("root", n=1):
            with obs.span("child"):
                pass
        snap = obs.span_snapshot()
        assert json.loads(json.dumps(snap)) == snap  # picklable/JSON-able
        sp = obs.Span.from_dict(snap[0])
        assert sp.name == "root" and sp.children[0].name == "child"

    def test_attach_worker_spans(self, tracing):
        with obs.span("w"):
            with obs.span("w.inner"):
                pass
        snap = obs.span_snapshot()
        obs.reset()
        obs.attach_worker_spans("worker[0]:Pverify/N/2", snap)
        (sp,) = obs.roots()
        assert sp.worker == "worker[0]:Pverify/N/2"
        assert sp.children[0].worker == sp.worker
        tree = obs.render_tree()
        assert "worker[0]:Pverify/N/2:w" in tree
        # children show the bare name (the lane is inherited)
        assert "worker[0]:Pverify/N/2:w.inner" not in tree

    def test_render_tree_and_timings(self, tracing):
        with obs.span("a", note="hi"):
            with obs.span("b"):
                pass
        with obs.span("b"):
            pass
        tree = obs.render_tree()
        assert "a" in tree and "└─ b" in tree and "(note=hi)" in tree
        flat = obs.flat_timings()
        assert set(flat) == {"a", "b"}
        assert obs.total_seconds() >= flat["a"]

    def test_render_tree_empty(self, tracing):
        assert "no spans recorded" in obs.render_tree()

    def test_enable_exports_env(self, tracing, monkeypatch):
        import os

        assert os.environ.get(obs.PROFILE_ENV) == "1"
        obs.disable()
        assert obs.PROFILE_ENV not in os.environ


# ---------------------------------------------------------------------------
# chrome trace export
# ---------------------------------------------------------------------------


class TestChromeTrace:
    def test_export_validates(self, tracing, tmp_path):
        with obs.span("root", nprocs=2):
            with obs.span("child"):
                perf.add("c", 1)
        obj = chrome.to_trace_events()
        assert chrome.validate_trace(obj) == len(obj["traceEvents"])
        names = [e["name"] for e in obj["traceEvents"]]
        assert "root" in names and "child" in names and "process_name" in names
        out = tmp_path / "trace.json"
        assert chrome.write_trace(out) == len(obj["traceEvents"])
        assert chrome.validate_trace_file(out) == len(obj["traceEvents"])

    def test_worker_lanes_get_distinct_pids(self, tracing):
        with obs.span("local"):
            pass
        snap = obs.span_snapshot()
        obs.attach_worker_spans("worker[0]", snap)
        obs.attach_worker_spans("worker[1]", snap)
        obj = chrome.to_trace_events()
        pids = {
            e["pid"] for e in obj["traceEvents"] if e["ph"] == "X"
        }
        assert pids == {0, 1, 2}
        lane_names = {
            e["args"]["name"]
            for e in obj["traceEvents"]
            if e["ph"] == "M"
        }
        assert {"repro", "worker[0]", "worker[1]"} <= lane_names

    @pytest.mark.parametrize(
        "obj",
        [
            [],
            {},
            {"traceEvents": []},
            {"traceEvents": [{"name": "", "ph": "X", "pid": 0, "tid": 0}]},
            {"traceEvents": [{"name": "a", "ph": "Q", "pid": 0, "tid": 0}]},
            {"traceEvents": [{"name": "a", "ph": "X", "pid": "x", "tid": 0}]},
            {
                "traceEvents": [
                    {"name": "a", "ph": "X", "pid": 0, "tid": 0,
                     "ts": -1, "dur": 0}
                ]
            },
        ],
    )
    def test_validate_rejects_malformed(self, obj):
        with pytest.raises(ValueError):
            chrome.validate_trace(obj)

    def test_validate_file_rejects_non_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError):
            chrome.validate_trace_file(bad)

    def test_default_trace_out_env(self, monkeypatch):
        monkeypatch.delenv(chrome.TRACE_OUT_ENV, raising=False)
        assert chrome.default_trace_out() is None
        monkeypatch.setenv(chrome.TRACE_OUT_ENV, "/tmp/t.json")
        assert str(chrome.default_trace_out()) == "/tmp/t.json"


# ---------------------------------------------------------------------------
# run manifests
# ---------------------------------------------------------------------------


def _sim_result(protocol="mesi", block_size=64):
    """A tiny real SimResult (two processors, two references)."""
    from repro.sim.cache import CacheConfig
    from repro.sim.coherence import CoherenceSim

    sim = CoherenceSim(
        2,
        CacheConfig(
            size=1024, block_size=block_size, assoc=2, protocol=protocol
        ),
    )
    sim.access(0, 0, 4, True)
    sim.access(1, 4, 4, False)
    return sim.result()


def _record(workload="Pverify", **kw):
    defaults = dict(
        kind="test",
        workload=workload,
        source="int main() { return 0; }",
        plan_desc="natural",
        nprocs=2,
        block_size=128,
        refs=100,
        trace_len=80,
        misses={"cold": 1, "replace": 0, "true": 2, "false": 3},
        fs_by_structure={"counter": 3},
        perf_snapshot={"trace_cache.hit": 1.0, "secret.counter": 9.0},
        span_timings={"pipeline.execute": 0.25},
    )
    defaults.update(kw)
    return manifest.build_record(**defaults)


class TestManifest:
    def test_build_record_shape(self):
        rec = _record(extra={"wall_seconds": 1.5})
        assert rec["schema"] == manifest.SCHEMA
        assert rec["source_sha256"] == manifest.source_hash(
            "int main() { return 0; }"
        )
        assert rec["misses"]["false"] == 3
        assert rec["spans"] == {"pipeline.execute": 0.25}
        assert rec["wall_seconds"] == 1.5
        # perf counters are filtered to the persisted allowlist
        assert rec["perf"] == {"trace_cache.hit": 1.0}
        json.dumps(rec)  # must be JSON-serializable as-is

    def test_record_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(manifest.RUN_LOG_ENV, raising=False)
        assert manifest.log_path() is None
        assert manifest.record(_record()) is None
        monkeypatch.setenv(manifest.RUN_LOG_ENV, "off")
        assert manifest.log_path() is None

    def test_append_and_read(self, tmp_path, monkeypatch):
        log = tmp_path / "runs.jsonl"
        monkeypatch.setenv(manifest.RUN_LOG_ENV, str(log))
        assert manifest.record(_record(workload="A")) == log
        assert manifest.record(_record(workload="B")) == log
        recs = manifest.read_all()
        assert [r["workload"] for r in recs] == ["A", "B"]

    def test_read_skips_corrupt_lines(self, tmp_path):
        log = tmp_path / "runs.jsonl"
        log.write_text(
            json.dumps(_record(workload="A")) + "\n"
            + "{truncated...\n"
            + "[1, 2]\n"
            + json.dumps(_record(workload="B")) + "\n"
        )
        recs = manifest.read_all(log)
        assert [r["workload"] for r in recs] == ["A", "B"]

    def test_last_for_ignores_version_suffix(self, tmp_path, monkeypatch):
        log = tmp_path / "runs.jsonl"
        monkeypatch.setenv(manifest.RUN_LOG_ENV, str(log))
        manifest.record(_record(workload="Maxflow/N", refs=1))
        manifest.record(_record(workload="Maxflow/C", refs=2))
        manifest.record(_record(workload="Water", refs=3))
        assert manifest.last_for("maxflow")["refs"] == 2
        assert manifest.last_for("Water")["refs"] == 3
        assert manifest.last_for("Pthor") is None

    def test_schema2_fields(self):
        rec = _record(
            kernel="native", chunk_size=4096,
            stream={"chunks_produced": 3, "stall_seconds": 0.01},
        )
        assert rec["schema"] == manifest.SCHEMA
        assert rec["kernel"] == "native"
        assert rec["chunk_size"] == 4096
        assert rec["stream"]["chunks_produced"] == 3
        # monolithic runs record the fields too, just empty
        batch = _record()
        assert batch["kernel"] is None
        assert batch["chunk_size"] is None and batch["stream"] == {}

    def test_upgrade_record_backfills_schema1(self):
        old = {
            "schema": 1, "ts": "2026-01-01T00:00:00+00:00",
            "kind": "profile", "workload": "Water",
            "misses": {"false": 9}, "custom": "kept",
        }
        up = manifest.upgrade_record(old)
        assert up["schema"] == manifest.SCHEMA
        assert up["kernel"] is None
        assert up["chunk_size"] is None
        assert up["stream"] == {} and up["fs_by_structure"] == {}
        assert up["dynamic"] == {}            # schema-3 default
        assert up["misses"]["false"] == 9     # existing data untouched
        assert up["custom"] == "kept"         # unknown fields preserved
        assert old["schema"] == 1             # input not mutated

    def test_upgrade_record_backfills_schema2_machine(self):
        # A schema-2 record's machine dict is pure geometry; the upgrade
        # stamps the identity every schema-2 writer implied: the
        # hard-coded KSR2 MSI machine, line size == block size.
        old = {
            "schema": 2, "kind": "profile", "workload": "Water",
            "machine": {"block_size": 64, "cache_size": 32768, "assoc": 4},
        }
        up = manifest.upgrade_record(old)
        assert up["schema"] == manifest.SCHEMA
        assert up["machine"]["name"] == "ksr2"
        assert up["machine"]["protocol"] == "msi"
        assert up["machine"]["line_size"] == 64
        assert up["machine"]["block_size"] == 64   # geometry untouched
        assert up["dynamic"] == {}
        assert "protocol" not in old["machine"]    # input not mutated

    def test_upgrade_record_keeps_schema3_machine(self):
        rec = _record()
        rec["machine"] = {
            "name": "modern64", "protocol": "mesi", "line_size": 64,
        }
        up = manifest.upgrade_record(rec)
        assert up["machine"]["name"] == "modern64"
        assert up["machine"]["protocol"] == "mesi"

    def test_sim_record_machine_identity(self):
        sim = _sim_result()
        rec = manifest.sim_record(
            kind="dynamic", workload="Maxflow/D",
            source="int main() { return 0; }", plan_desc="natural",
            nprocs=4, block_size=64, sim=sim,
            dynamic={"repairs": 2, "phases": 5},
            machine_name="modern64",
        )
        assert rec["schema"] == manifest.SCHEMA
        assert rec["machine"]["name"] == "modern64"
        assert rec["machine"]["protocol"] == sim.config.protocol
        assert rec["machine"]["line_size"] == sim.config.block_size
        assert rec["dynamic"] == {"repairs": 2, "phases": 5}
        json.dumps(rec)

    def test_read_all_upgrades_by_default(self, tmp_path):
        log = tmp_path / "runs.jsonl"
        log.write_text(json.dumps({"schema": 1, "workload": "A"}) + "\n")
        (up,) = manifest.read_all(log)
        assert up["schema"] == manifest.SCHEMA and up["kernel"] is None
        (raw,) = manifest.read_all(log, upgrade=False)
        assert raw["schema"] == 1 and "kernel" not in raw


# ---------------------------------------------------------------------------
# parallel lab merging (regression: worker counters must never be lost)
# ---------------------------------------------------------------------------


class TestParallelMerge:
    def test_worker_counters_and_spans_merged(self, tracing, monkeypatch):
        from repro.harness.parallel import run_points

        monkeypatch.setenv("REPRO_JOBS", "2")
        perf.reset()
        points = [("Pverify", "N", 2), ("Pverify", "C", 2)]
        out = run_points(points, 128)
        assert set(out) == set(points)
        snap = perf.snapshot()
        assert snap.get("parallel.points") == 2.0
        # every worker's interpreter counters came back to the parent
        assert snap.get("worker.interp.runs", 0) + snap.get(
            "worker.trace_cache.hit", 0
        ) >= 2.0
        labels = [sp.worker for sp in obs.roots()]
        # grid order: all of worker 0's roots, then all of worker 1's
        assert sorted(set(labels), key=labels.index) == [
            "worker[0]:Pverify/N/2",
            "worker[1]:Pverify/C/2",
        ]

    def test_one_bad_point_keeps_the_rest(self, monkeypatch):
        from repro.harness.parallel import run_points

        monkeypatch.setenv("REPRO_JOBS", "2")
        perf.reset()
        points = [("Pverify", "Z", 2), ("Pverify", "N", 2)]
        out = run_points(points, 128)
        assert set(out) == {("Pverify", "N", 2)}
        snap = perf.snapshot()
        assert snap.get("parallel.point_failed") == 1.0
        assert snap.get("parallel.points") == 1.0
        # the surviving worker's counters were still merged
        assert any(k.startswith("worker.") for k in snap)
