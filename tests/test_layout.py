"""Layout engine tests: natural C layout, transformed layouts, and the
no-overlap invariant."""

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_program
from repro.lang import compile_source
from repro.layout import DataLayout, GLOBALS_BASE, GROUP_BASE
from repro.layout.regions import build_region_map
from repro.rsd import Affine, Point, RSD, Range
from repro.transform import (
    GroupMember,
    LockPad,
    PadAlign,
    TransformPlan,
    decide_transformations,
)

from conftest import COUNTER_SRC


def natural(src: str, nprocs: int = 4, block: int = 128) -> DataLayout:
    checked = compile_source(src + "\nint main() { return 0; }")
    return DataLayout(checked, nprocs=nprocs, block_size=block)


class TestNaturalLayout:
    def test_declaration_order_contiguous(self):
        lay = natural("int a; int b; double c;")
        assert lay.globals["a"].base == GLOBALS_BASE
        assert lay.globals["b"].base == GLOBALS_BASE + 4
        assert lay.globals["c"].base == GLOBALS_BASE + 8  # aligned to 8

    def test_array_addressing_row_major(self):
        lay = natural("int g[4][8];")
        a00, _ = lay.materialize("g", [("idx", 0), ("idx", 0)])
        a01, _ = lay.materialize("g", [("idx", 0), ("idx", 1)])
        a10, _ = lay.materialize("g", [("idx", 1), ("idx", 0)])
        assert a01 - a00 == 4
        assert a10 - a00 == 32

    def test_struct_field_offsets(self):
        lay = natural("struct s { int a; double b; }; struct s x[2];")
        addr_a, ty_a = lay.materialize("x", [("idx", 1), ("field", "a")])
        addr_b, ty_b = lay.materialize("x", [("idx", 1), ("field", "b")])
        assert addr_b - addr_a == 8
        assert str(ty_a) == "int" and str(ty_b) == "double"

    def test_adjacent_scalars_share_block(self):
        lay = natural("int a; int b;", block=128)
        a, _ = lay.materialize("a", [])
        b, _ = lay.materialize("b", [])
        assert a // 128 == b // 128  # the source of scalar false sharing


class TestPadding:
    def test_scalar_pad_isolates_block(self):
        plan = TransformPlan(nprocs=4)
        plan.pads.append(PadAlign(base="a"))
        checked = compile_source("int a; int b;\nint main() { return 0; }")
        lay = DataLayout(checked, plan, nprocs=4, block_size=128)
        a, _ = lay.materialize("a", [])
        b, _ = lay.materialize("b", [])
        assert a % 128 == 0
        assert a // 128 != b // 128

    def test_per_element_pad(self):
        plan = TransformPlan(nprocs=4)
        plan.pads.append(PadAlign(base="g", per_element=True))
        checked = compile_source("int g[8];\nint main() { return 0; }")
        lay = DataLayout(checked, plan, nprocs=4, block_size=64)
        addrs = [lay.materialize("g", [("idx", i)])[0] for i in range(8)]
        blocks = {a // 64 for a in addrs}
        assert len(blocks) == 8

    def test_lock_array_padded(self):
        plan = TransformPlan(nprocs=4)
        plan.lock_pads.append(LockPad(base="ls"))
        checked = compile_source("lock_t ls[4];\nint main() { return 0; }")
        lay = DataLayout(checked, plan, nprocs=4, block_size=128)
        addrs = [lay.materialize("ls", [("idx", i)])[0] for i in range(4)]
        assert len({a // 128 for a in addrs}) == 4

    def test_struct_lock_field_own_block(self):
        plan = TransformPlan(nprocs=4)
        plan.lock_pads.append(LockPad(struct_field=("c", "lk")))
        checked = compile_source(
            "struct c { lock_t lk; int v; }; struct c cells[4];\n"
            "int main() { return 0; }"
        )
        lay = DataLayout(checked, plan, nprocs=4, block_size=128)
        lk0, _ = lay.materialize("cells", [("idx", 0), ("field", "lk")])
        v0, _ = lay.materialize("cells", [("idx", 0), ("field", "v")])
        assert lk0 // 128 != v0 // 128


class TestGroupRegion:
    def _grouped_layout(self, nprocs=4, block=128):
        plan = TransformPlan(nprocs=nprocs)
        pdv = RSD((Point(Affine.pdv()),))
        plan.group.append(GroupMember("a", (), pdv))
        plan.group.append(GroupMember("b", (), pdv))
        checked = compile_source(
            "int a[8]; double b[8];\nint main() { return 0; }"
        )
        return DataLayout(checked, plan, nprocs=nprocs, block_size=block)

    def test_same_owner_data_shares_block(self):
        lay = self._grouped_layout()
        a0, _ = lay.materialize("a", [("idx", 0)])
        b0, _ = lay.materialize("b", [("idx", 0)])
        assert a0 // 128 == b0 // 128
        assert a0 >= GROUP_BASE

    def test_distinct_owners_distinct_blocks(self):
        lay = self._grouped_layout()
        a0, _ = lay.materialize("a", [("idx", 0)])
        a1, _ = lay.materialize("a", [("idx", 1)])
        assert a0 // 128 != a1 // 128

    def test_unowned_elements_in_leftover(self):
        lay = self._grouped_layout(nprocs=4)
        # indices >= nprocs have no owner but still get storage
        a7, _ = lay.materialize("a", [("idx", 7)])
        assert a7 >= GROUP_BASE

    def test_cyclic_partition_transposes(self):
        plan = TransformPlan(nprocs=4)
        part = RSD((Range(Affine.pdv(), Affine.constant(15), 4),))
        plan.group.append(GroupMember("v", (), part))
        checked = compile_source("int v[16];\nint main() { return 0; }")
        lay = DataLayout(checked, plan, nprocs=4, block_size=128)
        # v[0], v[4], v[8] all belong to proc 0 -> contiguous
        a0, _ = lay.materialize("v", [("idx", 0)])
        a4, _ = lay.materialize("v", [("idx", 4)])
        a8, _ = lay.materialize("v", [("idx", 8)])
        assert a4 - a0 == 4 and a8 - a4 == 4
        # v[1] belongs to proc 1 -> different (padded) region
        a1, _ = lay.materialize("v", [("idx", 1)])
        assert a1 // 128 != a0 // 128


class TestInvariants:
    def _all_cells(self, lay: DataLayout, checked) -> list[tuple[int, int, str]]:
        """(addr, size, what) of every scalar cell in every global."""
        from repro.lang import ctypes as T

        cells = []

        def walk(base: str, steps, ty):
            if isinstance(ty, T.ArrayType):
                for i in range(ty.dims[0]):
                    inner = (
                        T.ArrayType(ty.elem, ty.dims[1:])
                        if len(ty.dims) > 1
                        else ty.elem
                    )
                    walk(base, steps + [("idx", i)], inner)
            elif isinstance(ty, T.StructType):
                for f in ty.fields:
                    walk(base, steps + [("field", f.name)], f.type)
            else:
                addr, rty = lay.materialize(base, steps)
                cells.append((addr, rty.size, f"{base}{steps}"))

        for g in checked.program.globals:
            walk(g.name, [], g.type)
        return cells

    def test_no_overlap_counter_program(self, counter_checked):
        for plan in (None, _full_plan(counter_checked)):
            lay = DataLayout(counter_checked, plan, nprocs=4, block_size=128)
            cells = self._all_cells(lay, counter_checked)
            cells.sort()
            for (a1, s1, w1), (a2, _s2, w2) in zip(cells, cells[1:]):
                assert a1 + s1 <= a2, f"{w1} overlaps {w2}"

    @settings(max_examples=20, deadline=None)
    @given(block=st.sampled_from([16, 32, 64, 128, 256]), nprocs=st.integers(2, 9))
    def test_no_overlap_property(self, block, nprocs):
        checked = compile_source(COUNTER_SRC)
        pa = analyze_program(checked, nprocs)
        plan = decide_transformations(pa, block_size=block)
        lay = DataLayout(checked, plan, nprocs=nprocs, block_size=block)
        cells = self._all_cells(lay, checked)
        cells.sort()
        for (a1, s1, w1), (a2, _s2, w2) in zip(cells, cells[1:]):
            assert a1 + s1 <= a2, f"{w1} overlaps {w2}"


def _full_plan(checked):
    pa = analyze_program(checked, 4)
    return decide_transformations(pa)


class TestRegionMap:
    def test_attribution_names(self, counter_checked):
        lay = DataLayout(counter_checked, nprocs=4)
        rm = build_region_map(lay)
        addr, _ = lay.materialize("counter", [("idx", 2)])
        assert rm.name_of(addr) == "counter"
        from repro.layout import BARRIER_ADDR, HEAP_BASE

        assert rm.name_of(BARRIER_ADDR) == "(sync)"
        assert rm.name_of(HEAP_BASE + 64) == "(heap)"

    def test_group_members_attributed(self, counter_checked):
        plan = _full_plan(counter_checked)
        lay = DataLayout(counter_checked, plan, nprocs=4)
        rm = build_region_map(lay)
        addr, _ = lay.materialize("counter", [("idx", 1)])
        assert rm.name_of(addr) == "counter"
