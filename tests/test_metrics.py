"""Metrics helpers: attribution, sweeps, and structure ranking."""

from repro.harness import Pipeline
from repro.sim import (
    attribute_misses,
    simulate_run,
    sweep_block_sizes,
    top_fs_structures,
)

from conftest import COUNTER_SRC


def _run():
    pipe = Pipeline(COUNTER_SRC)
    return pipe.run_unoptimized(8)


class TestAttribution:
    def test_totals_conserved(self):
        vr = _run()
        sim = vr.simulate(32)
        attributed = attribute_misses(sim, vr.regions())
        assert sum(s.total for s in attributed.values()) == sim.total_misses
        assert (
            sum(s.false_sharing for s in attributed.values())
            == sim.misses.false_sharing
        )

    def test_other_misses_derived(self):
        vr = _run()
        sim = vr.simulate(32)
        for s in attribute_misses(sim, vr.regions()).values():
            assert s.other == s.total - s.false_sharing
            assert s.other >= 0

    def test_top_ranking_sorted(self):
        vr = _run()
        sim = vr.simulate(32)
        top = top_fs_structures(sim, vr.regions(), 3)
        fs = [s.false_sharing for s in top]
        assert fs == sorted(fs, reverse=True)


class TestSweep:
    def test_sweep_covers_sizes(self):
        vr = _run()
        sweep = sweep_block_sizes(vr.run, [16, 64, 128])
        assert set(sweep.results) == {16, 64, 128}
        fracs = sweep.fs_fraction_by_size
        assert all(0.0 <= f <= 1.0 for f in fracs.values())

    def test_simulate_run_denominator_includes_private(self):
        vr = _run()
        sim = simulate_run(vr.run, 64)
        assert sim.extra_refs == sum(vr.run.private_refs.values())
        assert sim.miss_rate <= sim.total_misses / max(sim.refs, 1)
