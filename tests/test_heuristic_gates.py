"""The section-3.3 gating predicates, pinned one by one.

The heuristics are exercised end-to-end elsewhere (golden plans, the
transform tests); here each gate gets synthetic :class:`TargetPattern`
fixtures so its boundary conditions are stated explicitly — these same
predicates also define *legality* for the tuner's action space, so their
edges decide what the search is allowed to explore.
"""

from types import SimpleNamespace

import pytest

from repro.analysis.perprocess import MAIN_PROC
from repro.analysis.sideeffects import AccessEntry, Target
from repro.analysis.summary import TargetPattern
from repro.errors import SourceLocation
from repro.lang import compile_source
from repro.rsd.descriptor import RSD, Range, StridedUnknown
from repro.rsd.expr import Affine
from repro.transform.heuristics import (
    WRITE_DOMINANCE,
    _choose_partition,
    _dedupe_group,
    _indirectable,
    _pad_gate,
    _reads_gate,
    _single_writer,
)
from repro.transform.plan import GroupMember, PadAlign, TransformPlan

LOC = SourceLocation(1, 1, "<test>")


def _entry(
    *,
    write: bool,
    procs,
    phase: int = 0,
    weight: float = 10.0,
    rsd: RSD = RSD.scalar(),
) -> AccessEntry:
    return AccessEntry(
        target=Target("x"),
        is_write=write,
        rsd=rsd,
        weight=weight,
        phase=phase,
        procs=frozenset(procs),
        func="worker",
        loc=LOC,
        elem_size=4,
    )


def _pat(**weights) -> TargetPattern:
    pat = TargetPattern(target=Target("x"))
    for name, value in weights.items():
        setattr(pat, name, value)
    return pat


def _pdv_rsd(chunk: int = 4) -> RSD:
    return RSD(
        (Range(Affine.pdv(chunk), Affine.pdv(chunk) + (chunk - 1), 1),)
    )


def _unit_rsd(n: int = 16) -> RSD:
    return RSD((Range(Affine(0), Affine(n - 1), 1),))


def _strided_rsd(stride: int, n: int = 16) -> RSD:
    return RSD((Range(Affine(0), Affine(n - 1), stride),))


class TestReadsGate:
    def test_no_reads_passes(self):
        ok, why = _reads_gate(_pat(write_pp=100.0))
        assert ok and why == "no reads"

    def test_reads_without_locality_pass(self):
        # shared reads, but nothing with spatial locality
        ok, _ = _reads_gate(
            _pat(write_pp=50.0, read_pp=40.0, read_sh_nonlocal=60.0)
        )
        assert ok

    def test_local_reads_block(self):
        ok, why = _reads_gate(
            _pat(write_pp=50.0, read_sh_local=30.0, read_pp=10.0)
        )
        assert not ok
        assert "locality" in why

    def test_write_dominance_overrides_locality(self):
        # "writes dominate the number of reads by at least an order of
        # magnitude" — the paper's escape hatch
        reads = 10.0
        ok, _ = _reads_gate(
            _pat(write_pp=WRITE_DOMINANCE * reads, read_sh_local=reads)
        )
        assert ok
        ok, _ = _reads_gate(
            _pat(
                write_pp=WRITE_DOMINANCE * reads - 1.0,
                read_sh_local=reads,
            )
        )
        assert not ok

    def test_ten_percent_locality_threshold(self):
        ok, _ = _reads_gate(
            _pat(write_pp=5.0, read_pp=90.0, read_sh_local=10.0)
        )
        assert ok  # exactly 10% local: still fine
        ok, _ = _reads_gate(
            _pat(write_pp=5.0, read_pp=89.0, read_sh_local=11.0)
        )
        assert not ok


class TestPadGate:
    def test_requires_writes(self):
        assert not _pad_gate(_pat(read_sh_nonlocal=100.0))

    def test_requires_shared_writes(self):
        assert not _pad_gate(_pat(write_pp=60.0, write_sh=40.0))

    def test_shared_scalar_writes_fire(self):
        pat = _pat(write_sh=80.0, write_pp=0.0)
        pat.write_descriptors = [(RSD.scalar(), 80.0)]
        assert _pad_gate(pat)

    def test_unit_stride_writes_count_as_locality(self):
        # the paper's Topopt revolving array: known unit stride means
        # padding would waste real spatial locality
        pat = _pat(write_sh=80.0)
        pat.write_descriptors = [(_unit_rsd(), 80.0)]
        assert not _pad_gate(pat)
        pat.write_descriptors = [(RSD((StridedUnknown(1),)), 80.0)]
        assert not _pad_gate(pat)
        pat.write_descriptors = [(_strided_rsd(3), 80.0)]
        assert _pad_gate(pat)

    def test_local_reads_block(self):
        pat = _pat(write_sh=80.0, read_sh_local=60.0, read_sh_nonlocal=10.0)
        pat.write_descriptors = [(RSD.scalar(), 80.0)]
        assert not _pad_gate(pat)

    def test_nonlocal_reads_fire(self):
        pat = _pat(write_sh=80.0, read_sh_nonlocal=60.0, read_pp=10.0)
        pat.write_descriptors = [(RSD.scalar(), 80.0)]
        assert _pad_gate(pat)


class TestSingleWriter:
    def test_one_worker(self):
        pat = _pat()
        pat.entries = [
            _entry(write=True, procs={2}),
            _entry(write=False, procs={0, 1, 2, 3}),
        ]
        assert _single_writer(pat) == 2

    def test_multiple_writers(self):
        pat = _pat()
        pat.entries = [
            _entry(write=True, procs={1}),
            _entry(write=True, procs={2}),
        ]
        assert _single_writer(pat) is None

    def test_main_only_is_not_a_worker(self):
        pat = _pat()
        pat.entries = [_entry(write=True, procs={MAIN_PROC})]
        assert _single_writer(pat) is None

    def test_serial_phase_writes_ignored(self):
        pat = _pat()
        pat.entries = [
            _entry(write=True, procs={1}, phase=-1),
            _entry(write=True, procs={3}),
        ]
        assert _single_writer(pat) == 3

    def test_reads_do_not_make_writers(self):
        pat = _pat()
        pat.entries = [_entry(write=False, procs={0})]
        assert _single_writer(pat) is None


class TestChoosePartition:
    def test_picks_heaviest_pdv_disjoint(self):
        pat = _pat()
        pat.write_descriptors = [
            (_pdv_rsd(2), 5.0),
            (_pdv_rsd(4), 9.0),
            (_unit_rsd(), 100.0),  # heavy but PDV-independent
        ]
        assert _choose_partition(pat, 4) == _pdv_rsd(4)

    def test_no_pdv_descriptor(self):
        pat = _pat()
        pat.write_descriptors = [(_unit_rsd(), 50.0)]
        assert _choose_partition(pat, 4) is None

    def test_overlapping_pdv_sections_rejected(self):
        # pdv..pdv+7 with chunk 1: neighbours overlap, no partition
        overlapping = RSD((Range(Affine.pdv(1), Affine.pdv(1) + 7, 1),))
        pat = _pat()
        pat.write_descriptors = [(overlapping, 50.0)]
        assert _choose_partition(pat, 4) is None


INDIRECT_SRC = """
struct cell {
    struct cell *next;
    lock_t lk;
    int v;
};

struct cell *cells[8];

void worker(int pid)
{
    cells[pid]->v = pid;
}

int main()
{
    int i;
    struct cell *cp;
    for (i = 0; i < 8; i++) {
        cp = alloc(struct cell);
        cp->v = 0;
        cells[i] = cp;
    }
    for (i = 0; i < nprocs(); i++) {
        create(worker, i);
    }
    wait_for_end();
    print(cells[0]->v);
    return 0;
}
"""


class TestIndirectable:
    @pytest.fixture(scope="class")
    def pa(self):
        # _indirectable only consults the symbol table
        return SimpleNamespace(checked=compile_source(INDIRECT_SRC))

    def test_plain_field_ok(self, pa):
        assert _indirectable(pa, ("cell", "v"))

    def test_linkage_pointer_stays(self, pa):
        assert not _indirectable(pa, ("cell", "next"))

    def test_lock_field_stays(self, pa):
        assert not _indirectable(pa, ("cell", "lk"))

    def test_unknown_field_or_struct(self, pa):
        assert not _indirectable(pa, ("cell", "w"))
        assert not _indirectable(pa, ("nope", "v"))

    def test_heap_fixture_fields(self, heap_checked):
        pa = SimpleNamespace(checked=heap_checked)
        for fname in ("value", "count", "tag"):
            assert _indirectable(pa, ("node", fname))


class TestDedupeGroup:
    def test_duplicate_members_first_wins(self):
        plan = TransformPlan(
            nprocs=4,
            group=[
                GroupMember("a", (), _pdv_rsd(4)),
                GroupMember("a", (), None, 2),
                GroupMember("b", ()),
            ],
        )
        _dedupe_group(plan)
        assert [(m.base, m.partition) for m in plan.group] == [
            ("a", _pdv_rsd(4)),
            ("b", None),
        ]

    def test_duplicate_pads_collapse(self):
        plan = TransformPlan(
            nprocs=4,
            pads=[
                PadAlign("p", per_element=True),
                PadAlign("p", per_element=False),
                PadAlign("q"),
            ],
        )
        _dedupe_group(plan)
        assert [(p.base, p.per_element) for p in plan.pads] == [
            ("p", True),
            ("q", False),
        ]

    def test_grouped_base_cannot_also_be_padded(self):
        plan = TransformPlan(
            nprocs=4,
            group=[GroupMember("a", ()), GroupMember("s", ("f",))],
            pads=[PadAlign("a"), PadAlign("s"), PadAlign("z")],
        )
        _dedupe_group(plan)
        # 'a' moved to the group region wholesale: pad dropped; 's' is
        # grouped only through a field path, its pad survives
        assert [p.base for p in plan.pads] == ["s", "z"]
