"""Descriptor element unit tests (Point / Range / Unknown /
StridedUnknown and RSD containers)."""

import pytest
from hypothesis import given, strategies as st

from repro.rsd import Affine, PDV, Point, RSD, Range, UNKNOWN
from repro.rsd.descriptor import StridedUnknown, Unknown


class TestPoint:
    def test_instantiate(self):
        p = Point(Affine.pdv(3) + 1)
        assert p.instantiate(2) == (7, 7, 1)

    def test_pdv_dependence(self):
        assert Point(Affine.pdv()).depends_on_pdv
        assert not Point(Affine.constant(4)).depends_on_pdv

    def test_str(self):
        assert str(Point(Affine.pdv())) == "pdv"


class TestRange:
    def test_count(self):
        r = Range(Affine.constant(0), Affine.constant(9), 2)
        assert r.count == 5

    def test_count_symbolic_span_none(self):
        r = Range(Affine.pdv(), Affine.constant(10), 1)
        assert r.count is None

    def test_empty_range_count_zero(self):
        r = Range(Affine.constant(5), Affine.constant(3), 1)
        assert r.count == 0

    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            Range(Affine.constant(0), Affine.constant(4), 0)

    def test_instantiate_with_pdv(self):
        r = Range(Affine.pdv(8), Affine.pdv(8) + 7, 1)
        assert r.instantiate(3) == (24, 31, 1)


class TestUnknowns:
    def test_unknown_singleton(self):
        assert Unknown() is UNKNOWN
        assert Unknown() == UNKNOWN
        assert hash(Unknown()) == hash(UNKNOWN)

    def test_strided_unknown_equality(self):
        assert StridedUnknown(2) == StridedUnknown(2)
        assert StridedUnknown(2) != StridedUnknown(4)
        assert StridedUnknown(1).instantiate(0) is None

    def test_str_forms(self):
        assert str(UNKNOWN) == "?"
        assert str(StridedUnknown(4)) == "?:?:4"


class TestRSD:
    def test_scalar(self):
        r = RSD.scalar()
        assert r.ndim == 0 and not r.depends_on_pdv
        assert r.instantiate(0) == ()
        assert str(r) == "[·]"

    def test_instantiate_none_on_unknown_dim(self):
        r = RSD((Point(Affine.pdv()), UNKNOWN))
        assert r.instantiate(0) is None
        assert r.has_unknown

    def test_strided_unknown_counts_as_unknown(self):
        r = RSD((StridedUnknown(1),))
        assert r.has_unknown and r.instantiate(2) is None

    def test_multidim_instantiation(self):
        r = RSD((
            Range(Affine.constant(0), Affine.constant(3), 1),
            Point(Affine.pdv()),
        ))
        assert r.instantiate(5) == ((0, 3, 1), (5, 5, 1))
        assert r.depends_on_pdv

    @given(st.integers(0, 31), st.integers(0, 7))
    def test_point_instantiation_matches_affine(self, c, pdv):
        p = Point(Affine.pdv(2) + c)
        lo, hi, st_ = p.instantiate(pdv)
        assert lo == hi == 2 * pdv + c and st_ == 1

    def test_rsd_equality_and_hash(self):
        a = RSD((Point(Affine.pdv()),))
        b = RSD((Point(Affine.pdv()),))
        assert a == b and hash(a) == hash(b)
