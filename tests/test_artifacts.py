"""The unified content-addressed artifact store: publish atomicity,
LRU byte-budget eviction (never dropping an entry out from under an
open reader), integrity checks on read, legacy-layout migration, and
the persistent sim memo riding on top of it.
"""

import json
import logging
import os
import time

import numpy as np
import pytest

from repro.runtime import artifacts
from repro.runtime.artifacts import ArtifactStore


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def k(i):
    return artifacts.content_key("test", str(i))


# ---------------------------------------------------------------------------
# keys, publish, round-trip
# ---------------------------------------------------------------------------


def test_content_key_is_injective_over_part_boundaries():
    # NUL-joining means ("ab","c") and ("a","bc") must not collide.
    assert artifacts.content_key("ab", "c") != artifacts.content_key("a", "bc")
    assert artifacts.content_key("x") == artifacts.content_key("x")


def test_put_get_roundtrip(store):
    info = store.put_bytes("ns", k(1), b"payload-bytes", ".bin")
    assert info is not None and info.bytes == 13
    got = store.get("ns", k(1))
    assert got is not None
    assert got.path.read_bytes() == b"payload-bytes"
    assert store.read_bytes("ns", k(1)) == b"payload-bytes"
    # sharded by first key hex digit
    assert got.path.parent.name == k(1)[0]
    assert got.path.parent.parent.name == "shards"


def test_namespaces_do_not_collide(store):
    store.put_bytes("a", k(2), b"from-a")
    store.put_bytes("b", k(2), b"from-b")
    assert store.read_bytes("a", k(2)) == b"from-a"
    assert store.read_bytes("b", k(2)) == b"from-b"


def test_writer_abort_leaves_no_litter(store):
    w = store.writer("ns", k(3), ".bin")
    assert w.active
    w.path.write_bytes(b"half-written")
    w.abort()
    assert store.get("ns", k(3)) is None
    assert not list(store.root.rglob(".tmp-*"))


def test_delete_and_prune(store):
    for i in range(4):
        store.put_bytes("ns", k(10 + i), b"x" * 10)
    store.delete("ns", k(10))
    assert store.get("ns", k(10)) is None
    assert store.prune("ns") == 3
    assert store.stats()["entries"] == 0


def test_stats_by_namespace(store):
    store.put_bytes("trace", k(20), b"x" * 100)
    store.put_bytes("sim", k(21), b"y" * 50)
    stats = store.stats()
    assert stats["entries"] == 2
    assert stats["bytes"] == 150
    assert stats["namespaces"]["trace"]["bytes"] == 100
    assert stats["namespaces"]["sim"]["entries"] == 1


# ---------------------------------------------------------------------------
# satellite: integrity checking on read
# ---------------------------------------------------------------------------


def test_truncated_payload_skipped_and_logged(store, caplog):
    store.put_bytes("ns", k(30), b"z" * 1000)
    path = store.get("ns", k(30)).path
    path.write_bytes(b"z" * 10)  # truncate
    with caplog.at_level(logging.WARNING, logger="repro.artifacts"):
        assert store.get("ns", k(30)) is None
    assert any("unusable" in r.message for r in caplog.records)
    assert not path.exists(), "corrupt entry must be dropped"


def test_corrupt_payload_caught_under_full_verification(store, caplog):
    store.put_bytes("ns", k(31), b"good" * 256)
    path = store.get("ns", k(31)).path
    path.write_bytes(b"evil" * 256)  # same size, different content
    assert store.get("ns", k(31), verify=False) is not None
    with caplog.at_level(logging.WARNING, logger="repro.artifacts"):
        assert store.get("ns", k(31), verify=True) is None
    assert any("sha256" in r.message for r in caplog.records)


def test_missing_payload_is_a_miss(store):
    store.put_bytes("ns", k(32), b"payload")
    os.unlink(store.get("ns", k(32)).path)
    assert store.get("ns", k(32)) is None
    assert store.get("ns", k(32)) is None  # sidecar gone too now


def test_fsck_drops_corruption(store):
    store.put_bytes("ns", k(33), b"ok-entry")
    store.put_bytes("ns", k(34), b"bad-entry")
    path = store.get("ns", k(34)).path
    path.write_bytes(b"bad-entrX")
    report = store.fsck()
    assert report["checked"] == 2
    assert len(report["dropped"]) == 1
    assert store.get("ns", k(33)) is not None
    assert store.get("ns", k(34)) is None


# ---------------------------------------------------------------------------
# satellite: eviction never drops an entry mid-read
# ---------------------------------------------------------------------------


def test_eviction_lru_order_and_budget(tmp_path):
    store = ArtifactStore(tmp_path / "s", max_bytes=2500)
    for i in range(5):
        store.put_bytes("ns", k(40 + i), bytes([i]) * 1000)
        time.sleep(0.02)
    # the two newest fit the 2500-byte budget; older entries are gone
    stats = store.stats()
    assert stats["bytes"] <= 2500
    assert store.get("ns", k(44)) is not None, "just-published is exempt"
    assert store.get("ns", k(40)) is None


def test_touch_on_read_changes_eviction_order(tmp_path):
    store = ArtifactStore(tmp_path / "s", max_bytes=10_000_000)
    for i in range(3):
        store.put_bytes("ns", k(50 + i), bytes([i]) * 1000)
        time.sleep(0.02)
    time.sleep(0.02)
    assert store.get("ns", k(50)) is not None  # oldest becomes MRU
    store._max_bytes = 2500
    time.sleep(0.02)
    store.put_bytes("ns", k(53), b"\xff" * 1000)
    assert store.get("ns", k(50)) is not None, "touched entry survives"
    assert store.get("ns", k(51)) is None, "untouched LRU evicted"


def test_eviction_never_invalidates_open_handle(tmp_path):
    """POSIX semantics the store's no-drop-mid-read guarantee rests on:
    eviction unlinks the name, but a reader that already opened the
    payload keeps a valid handle to the full content."""
    store = ArtifactStore(tmp_path / "s", max_bytes=2500)
    data = b"A" * 2000
    store.put_bytes("ns", k(60), data, ".bin")
    info = store.get("ns", k(60))
    with open(info.path, "rb") as fh:
        first = fh.read(100)
        # this publish blows the budget and evicts k(60)'s name
        store.put_bytes("ns", k(61), b"B" * 2000)
        assert store.get("ns", k(60)) is None, "entry evicted"
        rest = fh.read()
    assert first + rest == data, "open reader saw the full payload"


def test_no_budget_means_no_eviction(store):
    for i in range(6):
        store.put_bytes("ns", k(70 + i), b"x" * 4000)
    assert store.stats()["entries"] == 6


def test_evict_to_budget_sweep(tmp_path):
    store = ArtifactStore(tmp_path / "s")
    for i in range(4):
        store.put_bytes("ns", k(80 + i), b"x" * 1000)
        time.sleep(0.02)
    store._max_bytes = 1500
    dropped = store.evict_to_budget()
    assert len(dropped) == 3
    assert store.stats()["bytes"] <= 1500


# ---------------------------------------------------------------------------
# satellite: migration round-trip from the three legacy layouts
# ---------------------------------------------------------------------------


def _legacy_layouts(tmp_path):
    """Build all three pre-store layouts with known content."""
    trace_dir = tmp_path / "legacy-traces"
    trace_dir.mkdir()
    tkey = artifacts.content_key("legacy", "trace")
    np.savez(trace_dir / f"{tkey}.npz", proc=np.arange(8))
    (trace_dir / "not-a-key.npz").write_bytes(b"ignored")

    memo_dir = tmp_path / "legacy-memo"
    memo_dir.mkdir()
    mkey = artifacts.content_key("legacy", "memo")
    (memo_dir / f"{mkey}.json").write_text('{"schema": 1}')

    golden_dir = tmp_path / "legacy-golden"
    golden_dir.mkdir()
    snap = {
        "schema": 1, "workload": "Maxflow", "nprocs": 4,
        "block_sizes": [32, 64], "versions": {},
    }
    (golden_dir / "maxflow.json").write_text(json.dumps(snap))
    (golden_dir / "README.txt").write_text("not json")
    return trace_dir, memo_dir, golden_dir, tkey, mkey, snap


def test_migrate_legacy_roundtrip(tmp_path, store):
    trace_dir, memo_dir, golden_dir, tkey, mkey, snap = _legacy_layouts(
        tmp_path
    )
    report = artifacts.migrate_legacy(
        store, trace_dir=trace_dir, sim_memo_dir=memo_dir,
        golden_dir=golden_dir,
    )
    assert report == {"trace": 1, "sim": 1, "golden": 1, "skipped": 0}

    # trace round-trips through numpy
    info = store.get(artifacts.NS_TRACE, tkey)
    with np.load(info.path) as z:
        np.testing.assert_array_equal(z["proc"], np.arange(8))
    # memo and golden round-trip as JSON
    assert json.loads(store.read_bytes(artifacts.NS_SIM, mkey)) == {
        "schema": 1
    }
    gkey = artifacts.golden_key(snap)
    assert json.loads(store.read_bytes(artifacts.NS_GOLDEN, gkey)) == snap

    # copy mode leaves the legacy files in place
    assert (trace_dir / f"{tkey}.npz").exists()

    # re-running is idempotent: everything skips, nothing re-imports
    again = artifacts.migrate_legacy(
        store, trace_dir=trace_dir, sim_memo_dir=memo_dir,
        golden_dir=golden_dir,
    )
    assert again == {"trace": 0, "sim": 0, "golden": 0, "skipped": 3}


def test_migrate_move_consumes_legacy_files(tmp_path, store):
    trace_dir, memo_dir, golden_dir, tkey, *_ = _legacy_layouts(tmp_path)
    artifacts.migrate_legacy(
        store, trace_dir=trace_dir, sim_memo_dir=memo_dir,
        golden_dir=golden_dir, move=True,
    )
    assert not (trace_dir / f"{tkey}.npz").exists()
    assert store.get(artifacts.NS_TRACE, tkey) is not None


def test_golden_publish_load_roundtrip(store):
    from repro.verify import golden

    snap = {
        "schema": 1, "workload": "Pverify", "nprocs": 4,
        "block_sizes": [32, 64, 128], "plan": "p",
        "versions": {"N": {}, "C": {}},
    }
    assert golden.publish_snapshot(store, snap) is not None
    got = golden.load_stored_snapshot(store, snap)
    assert got == snap
    # identity (not content) keys the entry: a refreshed snapshot
    # replaces the old one instead of accumulating
    snap2 = dict(snap, plan="different")
    golden.publish_snapshot(store, snap2)
    assert golden.load_stored_snapshot(store, snap) == snap2


# ---------------------------------------------------------------------------
# the persistent sim memo rides the store
# ---------------------------------------------------------------------------


def _tiny_sim():
    from repro.runtime.trace import Trace
    from repro.sim.cache import CacheConfig
    from repro.sim.simcache import cached_simulate

    rng = np.random.default_rng(7)
    n = 400
    trace = Trace(
        proc=rng.integers(0, 4, n).astype(np.int32),
        addr=(rng.integers(0, 1 << 12, n) * 4).astype(np.int64),
        size=np.full(n, 4, np.int32),
        is_write=(rng.random(n) < 0.3),
    )
    return cached_simulate(trace, 4, CacheConfig(block_size=64))


def test_sim_memo_persists_across_processes_worth_of_state(
    tmp_path, monkeypatch
):
    from repro.sim import simcache

    monkeypatch.setenv(simcache.ENV_MEMO, str(tmp_path / "memo"))
    simcache.clear()
    first = _tiny_sim()
    simcache.clear()  # simulate a fresh process: in-memory memo gone
    second = _tiny_sim()
    assert second.misses.as_tuple() == first.misses.as_tuple()
    assert second.fs_by_block == first.fs_by_block
    assert second.fs_pair_by_block == first.fs_pair_by_block
    assert dict(second.per_proc) == dict(first.per_proc)
    store = simcache.memo_store()
    assert store.stats()["namespaces"]["sim"]["entries"] >= 1


def test_sim_memo_corrupt_record_recomputed(tmp_path, monkeypatch):
    from repro.sim import simcache

    monkeypatch.setenv(simcache.ENV_MEMO, str(tmp_path / "memo"))
    simcache.clear()
    first = _tiny_sim()
    store = simcache.memo_store()
    # corrupt every persisted record in place (valid JSON, wrong shape)
    for info in list(store.entries(artifacts.NS_SIM)):
        store.put_bytes(artifacts.NS_SIM, info.key, b'{"schema": 99}')
    simcache.clear()
    second = _tiny_sim()
    assert second.misses.as_tuple() == first.misses.as_tuple()


def test_sim_memo_off_by_default(monkeypatch):
    from repro.sim import simcache

    monkeypatch.delenv(simcache.ENV_MEMO, raising=False)
    assert simcache.memo_store() is None
    monkeypatch.setenv(simcache.ENV_MEMO, "0")
    assert simcache.memo_store() is None
