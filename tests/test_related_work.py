"""Tests for the section-6 baselines: word-granularity invalidation
[DSR+93] and profile-guided transformation [TLH94]."""

import numpy as np

from repro.harness import Pipeline
from repro.runtime.trace import Trace
from repro.sim import CacheConfig, simulate_run, simulate_trace
from repro.transform import profile_guided_plan

from conftest import COUNTER_SRC, HEAP_SRC


def _trace(events):
    proc, addr, size, w = zip(*events)
    return Trace(
        proc=np.array(proc, np.int32),
        addr=np.array(addr, np.int64),
        size=np.array(size, np.int32),
        is_write=np.array(w, bool),
    )


class TestWordInvalidation:
    CFG = CacheConfig(size=2048, block_size=64, assoc=2)

    def test_false_sharing_eliminated(self):
        events = []
        for _ in range(6):
            events.append((0, 0, 4, True))
            events.append((1, 32, 4, True))
        block = simulate_trace(_trace(events), 2, self.CFG)
        word = simulate_trace(
            _trace(events), 2, self.CFG, word_invalidate=True
        )
        assert block.misses.false_sharing >= 8
        assert word.misses.false_sharing == 0

    def test_true_communication_still_misses(self):
        events = [
            (1, 32, 4, True),  # p1 fills the block first
            (0, 0, 4, True),   # p0 writes word 0 -> stale in p1's copy
            (1, 0, 4, False),  # p1 reads the word p0 wrote: real comm
        ]
        word = simulate_trace(
            _trace(events), 2, self.CFG, word_invalidate=True
        )
        assert word.misses.true_sharing == 1
        assert word.misses.false_sharing == 0

    def test_whole_program_fs_free(self):
        pipe = Pipeline(COUNTER_SRC)
        vn = pipe.run_unoptimized(8)
        block = simulate_run(vn.run, 128)
        word = simulate_run(vn.run, 128, word_invalidate=True)
        assert block.misses.false_sharing > 100
        assert word.misses.false_sharing == 0
        assert word.total_misses < block.total_misses

    def test_block_mode_unaffected_by_flag_default(self):
        pipe = Pipeline(COUNTER_SRC)
        vn = pipe.run_unoptimized(4)
        a = simulate_run(vn.run, 128)
        b = simulate_run(vn.run, 128, word_invalidate=False)
        assert a.misses == b.misses


class TestProfileGuided:
    def test_pads_the_profiled_offenders(self):
        pipe = Pipeline(COUNTER_SRC)
        vn = pipe.run_unoptimized(8)
        plan = profile_guided_plan(vn.run, vn.layout, block_size=128)
        padded = {p.base for p in plan.pads}
        assert padded & {"counter", "sums"}
        # TLH94 never group/indirect and never pad locks
        assert not plan.group and not plan.indirections
        assert not plan.lock_pads

    def test_record_padding_for_heap_types(self):
        pipe = Pipeline(HEAP_SRC)
        vn = pipe.run_unoptimized(8)
        plan = profile_guided_plan(vn.run, vn.layout, block_size=128)
        assert "node" in plan.record_pads

    def test_record_padding_reduces_fs_and_grows_data(self):
        pipe = Pipeline(HEAP_SRC)
        vn = pipe.run_unoptimized(8)
        plan = profile_guided_plan(vn.run, vn.layout, block_size=128)
        vt = pipe.run_with_plan(8, plan, "TLH94")
        assert vt.run.output == vn.run.output
        sn = vn.simulate(128)
        st = vt.simulate(128)
        assert st.misses.false_sharing < sn.misses.false_sharing
        # padded records occupy whole blocks
        assert vt.layout.struct_type("node").size % 128 == 0

    def test_semantics_preserved(self):
        pipe = Pipeline(COUNTER_SRC)
        vn = pipe.run_unoptimized(6)
        plan = profile_guided_plan(vn.run, vn.layout, block_size=128)
        vt = pipe.run_with_plan(6, plan, "TLH94")
        assert vt.run.output == vn.run.output

    def test_restricted_to_keeps_record_pads_with_pad_kind(self):
        from repro.transform import TransformPlan

        plan = TransformPlan(nprocs=4, record_pads=["node"])
        assert plan.restricted_to({"pad_align"}).record_pads == ["node"]
        assert plan.restricted_to({"locks"}).record_pads == []
        assert not plan.restricted_to({"pad_align"}).is_empty
