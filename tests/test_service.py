"""The layout-advisor job service: job lifecycle, retry-with-backoff
on worker death, per-job timeouts, bounded queue, cancellation, the
JSON-lines wire protocol, and the ``kind="service"`` manifest records.

No pytest-asyncio here: each test drives its own event loop through
``asyncio.run`` — the service must anyway work from a plain blocking
caller (the CLI).
"""

import asyncio
import json

import pytest

from conftest import COUNTER_SRC
from repro.errors import ReproError
from repro.obs import manifest
from repro.service.client import ServiceClient, parse_address
from repro.service.jobs import JobSpec, JobState
from repro.service.server import JobManager, QueueFullError, serve


def spec_for(kind="verify", **kw):
    kw.setdefault("source", COUNTER_SRC)
    kw.setdefault("label", "counter")
    kw.setdefault("nprocs", 4)
    kw.setdefault("block_size", 64)
    kw.setdefault("budget", 4)
    kw.setdefault("top", 2)
    return JobSpec(kind=kind, **kw)


def run_jobs(specs, *, workers=2, retries=2, **mgr_kw):
    """Submit specs against a fresh manager; return terminal records."""

    async def go():
        mgr = JobManager(workers=workers, retries=retries,
                         backoff=0.01, **mgr_kw)
        await mgr.start()
        try:
            jobs = [mgr.submit(s) for s in specs]
            return [await mgr.wait(j.id, timeout=120) for j in jobs]
        finally:
            await mgr.stop()

    return asyncio.run(go())


# ---------------------------------------------------------------------------
# spec validation
# ---------------------------------------------------------------------------


def test_spec_roundtrip_and_validation():
    spec = spec_for("tune", jobs=2, timeout_seconds=30.0)
    assert JobSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ReproError, match="kind"):
        JobSpec.from_dict(dict(spec.to_dict(), kind="mine"))
    with pytest.raises(ReproError, match="source"):
        spec_for(source="  ").validate()
    with pytest.raises(ReproError, match="nprocs"):
        spec_for(nprocs=0).validate()


# ---------------------------------------------------------------------------
# lifecycle: the advisory pipeline end to end
# ---------------------------------------------------------------------------


def test_concurrent_tune_and_verify_jobs_complete():
    tune, ver = run_jobs([spec_for("tune"), spec_for("verify")])
    for job in (tune, ver):
        assert job.state is JobState.DONE
        assert job.result["verified"], "recommendation must be oracle-checked"
    # the counter workload's whole point: the plan removes its FS
    assert tune.result["fs_removed"] > 0
    assert tune.result["recommended"]["fs_misses"] == 0
    assert tune.result["natural"]["fs_by_structure"]["counter"] > 0
    assert tune.result["tune"] is not None
    assert ver.result["tune"] is None  # verify-only skips the search
    assert set(tune.result["stage_seconds"]) == {
        "compile", "analyze", "tune", "verify", "attribute",
    }


def test_worker_death_retries_then_succeeds():
    (job,) = run_jobs([spec_for("verify", inject_failures=1)])
    assert job.state is JobState.DONE
    assert job.retries == 1
    assert job.result["attempt"] == 2


def test_retries_exhausted_fails():
    (job,) = run_jobs([spec_for("verify", inject_failures=99)], retries=2)
    assert job.state is JobState.FAILED
    assert job.retries == 2
    assert "injected failure" in job.error


def test_semantic_error_never_retries():
    (job,) = run_jobs([spec_for("verify", source="int x = ;")])
    assert job.state is JobState.FAILED
    assert job.retries == 0, "a bad program cannot be fixed by retrying"


def test_per_job_timeout():
    (job,) = run_jobs([spec_for("tune", timeout_seconds=0.001)])
    assert job.state is JobState.TIMEOUT
    assert "exceeded" in job.error


def test_queue_bound_rejects_excess_submits():
    async def go():
        mgr = JobManager(workers=1, queue_limit=2)  # workers not started
        mgr.submit(spec_for())
        mgr.submit(spec_for())
        with pytest.raises(QueueFullError):
            mgr.submit(spec_for())

    asyncio.run(go())


def test_cancel_queued_job():
    async def go():
        mgr = JobManager(workers=1)  # not started: jobs stay queued
        job = mgr.submit(spec_for())
        got = mgr.cancel(job.id)
        assert got.state is JobState.CANCELLED
        # terminal event fired, so wait returns immediately
        assert (await mgr.wait(job.id, timeout=1)).state is \
            JobState.CANCELLED

    asyncio.run(go())


def test_stats_counts_states():
    async def go():
        mgr = JobManager(workers=1)
        mgr.submit(spec_for())
        mgr.cancel(mgr.submit(spec_for()).id)
        stats = mgr.stats()
        assert stats["jobs"] == 2
        assert stats["states"] == {"queued": 1, "cancelled": 1}
        assert stats["queue_limit"] == mgr.queue_limit

    asyncio.run(go())


# ---------------------------------------------------------------------------
# manifest records
# ---------------------------------------------------------------------------


def test_service_manifest_records(tmp_path, monkeypatch):
    log = tmp_path / "runs.jsonl"
    monkeypatch.setenv(manifest.RUN_LOG_ENV, str(log))
    ok, bad = run_jobs([
        spec_for("verify"),
        spec_for("verify", source="void broken("),
    ])
    recs = [json.loads(line) for line in log.read_text().splitlines()]
    recs = [r for r in recs if r.get("kind") == "service"]
    assert len(recs) == 2
    by_state = {r["job_state"]: r for r in recs}
    done = by_state["done"]
    assert done["job_id"] == ok.id
    assert done["verified"] is True
    assert done["workload"] == "counter"
    assert done["exec_seconds"] >= 0
    assert "queue_wait_seconds" in done
    failed = by_state["failed"]
    assert failed["error"] and failed["verified"] is None


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------


def test_wire_protocol_end_to_end():
    """Full TCP loop: a blocking client (in a thread, like the CLI)
    against the asyncio server — submit, wait, list, stats, errors,
    shutdown."""

    async def go():
        ready = asyncio.Event()
        mgr = JobManager(workers=2, retries=1, backoff=0.01)
        server_task = asyncio.create_task(
            serve("127.0.0.1", 0, manager=mgr, ready=ready)
        )
        await ready.wait()
        host, port = mgr.bound

        def drive():
            with ServiceClient(host, port) as cli:
                assert cli.ping()
                job_id = cli.submit(
                    spec_for("verify", inject_failures=1).to_dict()
                )
                job = cli.wait(job_id, timeout=120)
                assert job["state"] == "done"
                assert job["retries"] == 1
                assert job["result"]["verified"]

                assert [j["id"] for j in cli.jobs()] == [job_id]
                stats = cli.stats()
                assert stats["served"] == 1 and stats["retried"] == 1
                assert "artifacts" in stats

                with pytest.raises(ReproError, match="unknown op"):
                    cli.request("frobnicate")
                with pytest.raises(ReproError, match="unknown job"):
                    cli.request("status", id="job-999")
                with pytest.raises(ReproError, match="source"):
                    cli.submit(spec_for(source=" ").to_dict())
                cli.shutdown()

        await asyncio.get_running_loop().run_in_executor(None, drive)
        await asyncio.wait_for(server_task, timeout=30)

    asyncio.run(go())


def test_parse_address():
    assert parse_address("127.0.0.1:8123") == ("127.0.0.1", 8123)
    assert parse_address(":8123") == ("127.0.0.1", 8123)
    with pytest.raises(ReproError):
        parse_address("nope")
