"""Native protocol kernel: bit-identity with the Python reference core,
selection/fallback semantics, and the simcache keying regression.

The native kernel is an *optimisation*, never a semantic fork: every
miss count, per-processor split, per-block histogram, and
false-sharing pair tag must match the pure-Python
:class:`~repro.sim.coherence.CoherenceSim` exactly.  The suite runs
meaningfully under both CI legs — with ``REPRO_SIM_KERNEL=python`` the
native-only tests skip and the selection tests assert the fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.runtime.trace import Trace
from repro.sim import CacheConfig, build_events, simulate_trace
from repro.sim import kernel as K
from repro.sim import simcache
from repro.sim.engine import (
    resolve_kernel,
    simulate_events,
    simulate_trace_chunked,
    simulate_trace_fast,
)
from repro.workloads.registry import SIMULATION_WORKLOADS

from test_engine_equivalence import make_trace

HAVE_NATIVE = K.load_kernel() is not None

needs_native = pytest.mark.skipif(
    not HAVE_NATIVE, reason="native kernel unavailable (no C compiler "
    "or REPRO_SIM_KERNEL=python)"
)


def assert_same_result(got, ref):
    """Every observable field of two SimResults matches exactly."""
    assert got.misses == ref.misses
    assert dict(got.per_proc) == dict(ref.per_proc)
    assert got.invalidations == ref.invalidations
    assert got.writebacks == ref.writebacks
    assert got.upgrades == ref.upgrades
    assert got.refs == ref.refs
    assert got.fs_by_block == ref.fs_by_block
    assert got.miss_by_block == ref.miss_by_block
    assert got.fs_pair_by_block == ref.fs_pair_by_block


events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-1, max_value=3),          # proc (incl. main)
        st.integers(min_value=0, max_value=255),         # addr
        st.sampled_from([1, 2, 3, 4, 5, 7, 8, 12, 16]),  # size (straddles)
        st.booleans(),                                   # is_write
    ),
    min_size=1,
    max_size=120,
)


# ---------------------------------------------------------------------------
# bit-identity: native vs reference
# ---------------------------------------------------------------------------


@needs_native
@settings(max_examples=150, deadline=None)
@given(events=events_strategy, block=st.sampled_from([8, 16, 32]))
def test_native_matches_reference_random(events, block):
    trace = make_trace(events)
    cfg = CacheConfig(size=4 * block, block_size=block, assoc=1)
    ref = simulate_trace(trace, 4, cfg)
    native = simulate_trace_fast(trace, 4, cfg, kernel="native")
    assert native.kernel == "native"
    assert_same_result(native, ref)


@needs_native
@pytest.mark.parametrize(
    "wl", SIMULATION_WORKLOADS, ids=[w.name for w in SIMULATION_WORKLOADS]
)
@pytest.mark.parametrize("block_size", [16, 128])
def test_native_workload_equivalence(wl, block_size, workload_run):
    run = workload_run(wl)
    cfg = CacheConfig(size=32 * 1024, block_size=block_size, assoc=4)
    extra = sum(run.private_refs.values())
    ref = simulate_trace(run.trace, run.nprocs, cfg, extra_refs=extra)
    native = simulate_trace_fast(
        run.trace, run.nprocs, cfg, extra_refs=extra, kernel="native"
    )
    assert native.kernel == "native"
    assert_same_result(native, ref)


@needs_native
def test_native_state_carries_over_chunks():
    """One NativeSim fed in pieces equals one fed whole."""
    rng = np.random.default_rng(7)
    n = 5000
    trace = Trace(
        proc=rng.integers(-1, 4, n).astype(np.int32),
        addr=(rng.integers(0, 512, n) * 4).astype(np.int64),
        size=np.full(n, 4, np.int32),
        is_write=(rng.random(n) < 0.4),
    )
    cfg = CacheConfig(size=1024, block_size=32, assoc=2)
    events = build_events(trace, 32)
    whole = K.NativeSim(4, cfg)
    whole.consume(events)
    a = whole.result()
    piecewise = K.NativeSim(4, cfg)
    for start in range(0, len(events), 13):
        piecewise.consume(events.slice(start, start + 13))
    b = piecewise.result()
    assert_same_result(a, b)
    whole.close()
    piecewise.close()


# ---------------------------------------------------------------------------
# selection, envelope, fallback
# ---------------------------------------------------------------------------


def test_kernel_mode_env(monkeypatch):
    monkeypatch.setenv(K.KERNEL_ENV, "python")
    assert K.kernel_mode() == "python"
    monkeypatch.setenv(K.KERNEL_ENV, "NATIVE")
    assert K.kernel_mode() == "native"
    monkeypatch.delenv(K.KERNEL_ENV)
    assert K.kernel_mode() == "auto"
    monkeypatch.setenv(K.KERNEL_ENV, "turbo")
    with pytest.raises(SimulationError):
        K.kernel_mode()


def test_python_mode_never_loads(monkeypatch):
    monkeypatch.setenv(K.KERNEL_ENV, "python")
    K.reset_for_tests()
    try:
        assert K.load_kernel() is None
        assert K.active_kernel() == "python"
    finally:
        K.reset_for_tests()


def test_forced_native_errors_when_unavailable(monkeypatch):
    """REPRO_SIM_KERNEL=native must fail loudly, not silently fall back."""
    monkeypatch.setenv(K.KERNEL_ENV, "native")
    monkeypatch.setattr(K, "_lib", None)
    monkeypatch.setattr(K, "_load_attempted", True)
    with pytest.raises(SimulationError, match="native"):
        K.active_kernel()


def test_word_invalidate_always_python():
    assert resolve_kernel(word_invalidate=True) == "python"


def test_envelope_fallback(monkeypatch):
    """A stream outside the envelope falls back in auto mode and raises
    under forced native."""
    trace = Trace(
        proc=np.array([0, 1], np.int32),
        addr=np.array([0, 1 << 57], np.int64),  # block >= 2**50 at bs=32
        size=np.array([4, 4], np.int32),
        is_write=np.array([True, True]),
    )
    events = build_events(trace, 32)
    assert not K.chunk_fits(events.proc, events.block)
    monkeypatch.setenv(K.KERNEL_ENV, "auto")
    assert resolve_kernel(events=events) == "python"
    cfg = CacheConfig(size=1024, block_size=32, assoc=2)
    res = simulate_events(events, 2, cfg)  # must not crash
    assert res.kernel == "python"
    assert_same_result(res, simulate_trace(trace, 2, cfg))
    monkeypatch.setenv(K.KERNEL_ENV, "native")
    if HAVE_NATIVE:
        with pytest.raises(SimulationError, match="envelope"):
            resolve_kernel(events=events)


@needs_native
def test_native_sim_rejects_out_of_envelope_chunk():
    cfg = CacheConfig(size=1024, block_size=32, assoc=2)
    sim = K.NativeSim(2, cfg)
    trace = Trace(
        proc=np.array([63], np.int32),  # > MAX_PROC
        addr=np.array([0], np.int64),
        size=np.array([4], np.int32),
        is_write=np.array([True]),
    )
    with pytest.raises(SimulationError, match="envelope"):
        sim.consume(build_events(trace, 32))
    sim.close()


def test_result_reports_kernel():
    trace = make_trace([(0, 0, 4, True), (1, 4, 4, True)])
    cfg = CacheConfig(size=256, block_size=16, assoc=1)
    py = simulate_trace_fast(trace, 2, cfg, kernel="python")
    assert py.kernel == "python"
    if HAVE_NATIVE:
        nat = simulate_trace_fast(trace, 2, cfg, kernel="native")
        assert nat.kernel == "native"


# ---------------------------------------------------------------------------
# simcache keying regression (kernel variant + chunking params)
# ---------------------------------------------------------------------------


def _memo_trace():
    rng = np.random.default_rng(11)
    n = 400
    return Trace(
        proc=rng.integers(-1, 4, n).astype(np.int32),
        addr=(rng.integers(0, 128, n) * 4).astype(np.int64),
        size=np.full(n, 4, np.int32),
        is_write=(rng.random(n) < 0.5),
    )


def test_simcache_keys_on_chunking():
    """Chunked and monolithic simulations of the same (trace, geometry)
    must occupy *different* memo slots — they are asserted equivalent,
    so sharing a slot would let a chunking bug hide behind the memo."""
    simcache.clear()
    trace = _memo_trace()
    cfg = CacheConfig(size=512, block_size=32, assoc=2)
    mono = simcache.cached_simulate(trace, 4, cfg)
    chunked = simcache.cached_simulate(trace, 4, cfg, chunk_refs=7)
    assert chunked is not mono  # separate computation, separate slot
    assert_same_result(chunked, mono)
    # repeat lookups hit their own slots
    assert simcache.cached_simulate(trace, 4, cfg) is mono
    assert simcache.cached_simulate(trace, 4, cfg, chunk_refs=7) is chunked
    # a different chunk size is a different slot again
    other = simcache.cached_simulate(trace, 4, cfg, chunk_refs=64)
    assert other is not chunked and other is not mono


@needs_native
def test_simcache_keys_on_kernel_variant():
    simcache.clear()
    trace = _memo_trace()
    cfg = CacheConfig(size=512, block_size=32, assoc=2)
    py = simcache.cached_simulate(trace, 4, cfg, kernel="python")
    nat = simcache.cached_simulate(trace, 4, cfg, kernel="native")
    assert py is not nat
    assert py.kernel == "python" and nat.kernel == "native"
    assert_same_result(nat, py)
    assert simcache.cached_simulate(trace, 4, cfg, kernel="python") is py
    assert simcache.cached_simulate(trace, 4, cfg, kernel="native") is nat


def test_simcache_reference_engine_keys_python():
    """The reference engine always records the python kernel — it can
    never collide with a fast-engine entry."""
    simcache.clear()
    trace = _memo_trace()
    cfg = CacheConfig(size=512, block_size=32, assoc=2)
    ref = simcache.cached_simulate(trace, 4, cfg, engine="reference")
    fast = simcache.cached_simulate(trace, 4, cfg, engine="fast")
    assert ref is not fast
    assert ref.engine == "reference" and fast.engine == "fast"
    assert_same_result(fast, ref)


# ---------------------------------------------------------------------------
# chunked streaming equals monolithic (native side; the full property
# matrix lives in tests/test_stream.py)
# ---------------------------------------------------------------------------


@needs_native
@pytest.mark.parametrize("chunk_refs", [1, 7, 4096])
def test_native_chunked_matches_monolithic(chunk_refs):
    trace = _memo_trace()
    cfg = CacheConfig(size=512, block_size=32, assoc=2)
    mono = simulate_trace_fast(trace, 4, cfg, kernel="native")
    chunked = simulate_trace_chunked(
        trace, 4, cfg, chunk_refs, kernel="native"
    )
    assert chunked.kernel == "native"
    assert_same_result(chunked, mono)
