"""Coherence simulator tests: protocol behaviour and the miss
classification (cold / replace / true / false sharing)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.runtime.trace import Trace
from repro.sim import CacheConfig, CoherenceSim, simulate_trace


def make_trace(events):
    """events: list of (proc, addr, size, is_write)."""
    proc, addr, size, w = zip(*events)
    return Trace(
        proc=np.array(proc, dtype=np.int32),
        addr=np.array(addr, dtype=np.int64),
        size=np.array(size, dtype=np.int32),
        is_write=np.array(w, dtype=bool),
    )


def sim(events, block=64, size=4 * 1024, assoc=2, nprocs=4):
    cfg = CacheConfig(size=size, block_size=block, assoc=assoc)
    return simulate_trace(make_trace(events), nprocs, cfg)


class TestClassification:
    def test_cold_miss(self):
        r = sim([(0, 0, 4, False)])
        assert r.misses.cold == 1 and r.total_misses == 1

    def test_hit_after_fill(self):
        r = sim([(0, 0, 4, False), (0, 4, 4, False)])
        assert r.total_misses == 1

    def test_true_sharing(self):
        # p1 reads the word p0 wrote
        r = sim([
            (0, 0, 4, True),
            (1, 0, 4, False),
            (0, 0, 4, True),   # upgrade-invalidate p1
            (1, 0, 4, False),  # miss on the word p0 modified -> true
        ])
        assert r.misses.true_sharing == 1
        assert r.misses.false_sharing == 0

    def test_false_sharing(self):
        # p0 and p1 write different words of the same block
        events = []
        for _ in range(4):
            events.append((0, 0, 4, True))
            events.append((1, 32, 4, True))
        r = sim(events)
        assert r.misses.false_sharing >= 4
        assert r.misses.true_sharing == 0

    def test_padding_removes_false_sharing(self):
        # same logical pattern, separate blocks
        events = []
        for _ in range(4):
            events.append((0, 0, 4, True))
            events.append((1, 64, 4, True))
        r = sim(events)
        assert r.misses.false_sharing == 0
        assert r.misses.cold == 2 and r.total_misses == 2

    def test_replacement_miss(self):
        # 2 sets * 2 ways of 64B; four even blocks overflow set 0
        events = [(0, b * 128, 4, False) for b in range(3)]
        events.append((0, 0, 4, False))  # block 0 was evicted
        r = sim(events, block=64, size=4 * 64, assoc=2)
        assert r.misses.replace == 1

    def test_invalidating_write_is_true_comm(self):
        # classic migratory pattern: each proc increments the same word
        events = [(p % 2, 0, 4, True) for p in range(8)]
        r = sim(events)
        assert r.misses.false_sharing == 0
        assert r.misses.true_sharing == 6

    def test_straddling_access_touches_two_blocks(self):
        r = sim([(0, 60, 8, False)])
        assert r.misses.cold == 2

    def test_upgrade_counts(self):
        r = sim([(0, 0, 4, False), (0, 0, 4, True)])
        assert r.upgrades == 1 and r.total_misses == 1

    def test_invalidation_counts(self):
        r = sim([(0, 0, 4, False), (1, 0, 4, False), (0, 0, 4, True)])
        assert r.invalidations == 1

    def test_writeback_on_remote_read(self):
        r = sim([(0, 0, 4, True), (1, 0, 4, False)])
        assert r.writebacks == 1


class TestAccounting:
    def test_refs_counted(self):
        r = sim([(0, 0, 4, False)] * 10)
        assert r.refs == 10
        assert r.miss_rate == 0.1

    def test_extra_refs_in_denominator(self):
        cfg = CacheConfig(size=4 * 1024, block_size=64, assoc=2)
        t = make_trace([(0, 0, 4, False)])
        r = simulate_trace(t, 1, cfg, extra_refs=9)
        assert r.miss_rate == 0.1

    def test_per_proc_conservation(self):
        events = [(p, (p * 8) % 128, 4, True) for p in range(4)] * 5
        r = sim(events)
        total = sum(c.total for c in r.per_proc.values())
        assert total == r.total_misses

    def test_fs_by_block_sums(self):
        events = []
        for _ in range(4):
            events.append((0, 0, 4, True))
            events.append((1, 32, 4, True))
        r = sim(events)
        assert sum(r.fs_by_block.values()) == r.misses.false_sharing

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 63).map(lambda x: x * 4),
                st.just(4),
                st.booleans(),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_classification_conservation_property(self, events):
        r = sim(events)
        m = r.misses
        assert m.total == m.cold + m.replace + m.true_sharing + m.false_sharing
        assert m.total <= r.refs + 16  # straddles can add block accesses
        assert sum(r.miss_by_block.values()) == m.total


class TestBlockSizeEffect:
    def test_false_sharing_grows_with_block_size(self):
        events = []
        for _ in range(8):
            for p in range(4):
                events.append((p, p * 16, 4, True))
        small = sim(events, block=16)
        large = sim(events, block=64)
        assert large.misses.false_sharing > small.misses.false_sharing
