"""Affine-form algebra tests (including property-based)."""

from hypothesis import given, strategies as st

from repro.rsd.expr import PDV, Affine

symbols = st.sampled_from(["i", "j", "k", PDV])
coeffs = st.integers(min_value=-20, max_value=20)


@st.composite
def affines(draw):
    const = draw(st.integers(min_value=-100, max_value=100))
    terms = draw(
        st.dictionaries(symbols, coeffs, max_size=3)
    )
    a = Affine.constant(const)
    for name, c in terms.items():
        a = a + Affine.var(name, c)
    return a


class TestConstruction:
    def test_constant(self):
        a = Affine.constant(5)
        assert a.is_constant and a.const == 5 and a.value() == 5

    def test_zero_coefficients_dropped(self):
        assert Affine.var("x", 0) == Affine.constant(0)
        a = Affine.var("x") - Affine.var("x")
        assert a.is_constant

    def test_pdv_helpers(self):
        a = Affine.pdv(3)
        assert a.pdv_coeff == 3 and a.depends_on_pdv

    def test_str_readable(self):
        text = str(Affine.pdv(2) + 5)
        assert "pdv" in text and "5" in text


class TestArithmetic:
    def test_add_sub(self):
        a = Affine.var("i", 2) + 3
        b = Affine.var("i", 1) + Affine.var("j", 4)
        s = a + b
        assert s.coeff("i") == 3 and s.coeff("j") == 4 and s.const == 3
        assert (s - b) == a

    def test_mul_constant_only(self):
        a = Affine.var("i") + 1
        assert a.mul(Affine.constant(3)) == a.scale(3)
        assert a.mul(Affine.var("j")) is None

    def test_div_exact(self):
        a = Affine.var("i", 4) + 8
        assert a.div_exact(4) == Affine.var("i") + 2
        assert a.div_exact(3) is None
        assert a.div_exact(0) is None

    def test_substitute_and_value(self):
        a = Affine.var("i", 2) + Affine.pdv(3) + 1
        v = a.value({"i": 5, PDV: 2})
        assert v == 2 * 5 + 3 * 2 + 1

    def test_value_unbound_raises(self):
        import pytest

        with pytest.raises(ValueError):
            (Affine.var("i")).value()


class TestProperties:
    @given(affines(), affines())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(affines(), affines(), affines())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(affines())
    def test_sub_self_is_zero(self, a):
        z = a - a
        assert z.is_constant and z.const == 0

    @given(affines(), st.integers(min_value=-10, max_value=10))
    def test_scale_matches_eval(self, a, k):
        env = {name: 3 for name in a.symbols}
        assert a.scale(k).value(env) == k * a.value(env)

    @given(affines(), affines(), st.dictionaries(symbols, st.integers(-50, 50)))
    def test_eval_homomorphism(self, a, b, env):
        full_env = {name: env.get(name, 1) for name in (a.symbols | b.symbols)}
        assert (a + b).value(full_env) == a.value(full_env) + b.value(full_env)
