"""Transformation-decision heuristics tests (paper section 3.3)."""

from repro.analysis import analyze_program
from repro.lang import compile_source
from repro.transform import decide_transformations

WRAP = """
{decls}
void w(int pid)
{{
{body}
}}
int main()
{{
    int p;
{init}
    for (p = 0; p < nprocs(); p++) {{ create(w, p); }}
    wait_for_end();
    return 0;
}}
"""


def plan_for(decls: str, body: str, init: str = "", nprocs: int = 8):
    src = WRAP.format(decls=decls, body=body, init=init)
    pa = analyze_program(compile_source(src), nprocs)
    return decide_transformations(pa)


class TestGroupTranspose:
    def test_pdv_vector_grouped(self):
        plan = plan_for(
            "int a[64];",
            "    int i;\n    for (i = 0; i < 50; i++) { a[pid] += 1; }",
        )
        assert any(m.base == "a" for m in plan.group)

    def test_read_locality_blocks_grouping(self):
        # writes per-process but reads dominated by unit-stride shared scans
        plan = plan_for(
            "int a[64];",
            "    int i;\n    int s;\n    s = 0;\n"
            "    a[pid] = pid;\n"
            "    for (i = 0; i < 64; i++) { s = s + a[i]; }\n"
            "    a[pid] = s;",
        )
        assert not any(m.base == "a" for m in plan.group)

    def test_write_dominance_overrides_read_locality(self):
        plan = plan_for(
            "int a[64];",
            "    int i;\n    int s;\n    s = 0;\n"
            "    for (i = 0; i < 200; i++) { a[pid] += i; }\n"
            "    for (i = 0; i < 8; i++) { s = s + a[i]; }\n"
            "    a[pid] = s;",
        )
        assert any(m.base == "a" for m in plan.group)

    def test_owned_scalar_grouped(self):
        plan = plan_for(
            "int flag; int a[64];",
            "    int i;\n"
            "    for (i = 0; i < 60; i++) {\n"
            "        a[pid] += 1;\n"
            "        if (pid == 0) { flag = i; }\n"
            "    }",
        )
        assert any(m.base == "flag" and m.owner == 0 for m in plan.group)


class TestIndirection:
    def test_heap_field_indirected(self, heap_checked):
        pa = analyze_program(heap_checked, 8)
        plan = decide_transformations(pa)
        fields = {(i.struct, i.field) for i in plan.indirections}
        assert ("node", "count") in fields
        assert ("node", "value") in fields

    def test_pointer_fields_never_indirected(self):
        plan = plan_for(
            "struct n { int v; struct n *next; }; struct n *xs[32];",
            "    int i;\n    int r;\n"
            "    for (r = 0; r < 4; r++) {\n"
            "        for (i = pid; i < 32; i += nprocs()) {\n"
            "            xs[i]->v += 1;\n"
            "            xs[i]->next = 0;\n"
            "        }\n"
            "    }",
            init=(
                "    int i;\n"
                "    for (i = 0; i < 32; i++) { xs[i] = alloc(struct n); }"
            ),
        )
        fields = {(ind.struct, ind.field) for ind in plan.indirections}
        assert ("n", "v") in fields
        assert ("n", "next") not in fields


class TestPadAlign:
    def test_shared_scatter_padded(self):
        plan = plan_for(
            "int cells[48];",
            "    int i;\n"
            "    for (i = 0; i < 50; i++) { cells[rnd(i + pid) % 48] += 1; }",
        )
        assert any(p.base == "cells" for p in plan.pads)

    def test_unit_stride_writes_not_padded(self):
        # Topopt's revolving partition: data-dependent offset, unit stride
        plan = plan_for(
            "int board[256]; int offset; int chunk;",
            "    int i;\n"
            "    for (i = 0; i < chunk; i++) {\n"
            "        board[offset + pid * chunk + i] += 1;\n"
            "    }",
            init="    offset = 3;\n    chunk = 128 / nprocs();",
        )
        # offset is reassigned nowhere else, but keep it opaque by writing it:
        assert not any(p.base == "board" for p in plan.pads)

    def test_infrequent_scalar_not_padded(self):
        plan = plan_for(
            "int rare; int hot[64];",
            "    int i;\n"
            "    for (i = 0; i < 300; i++) { hot[pid] += 1; }\n"
            "    if (hot[pid] % 1024 > 2048) { rare = pid; }",
        )
        assert not any(p.base == "rare" for p in plan.pads)

    def test_read_only_untouched(self):
        plan = plan_for(
            "int table[64]; int out[64];",
            "    int i;\n"
            "    for (i = 0; i < 40; i++) { out[pid] += table[i % 64]; }",
        )
        decisions = {d.target: d.action for d in plan.decisions}
        assert decisions.get("table", "none") == "none"


class TestLocks:
    def test_lock_always_padded(self, counter_checked):
        pa = analyze_program(counter_checked, 8)
        plan = decide_transformations(pa)
        assert any(lp.base == "biglock" for lp in plan.lock_pads)

    def test_lock_array_padded(self):
        plan = plan_for(
            "lock_t ls[8]; int a[64];",
            "    lock(&ls[pid % 8]);\n    a[pid] += 1;\n    unlock(&ls[pid % 8]);",
        )
        assert any(lp.base == "ls" for lp in plan.lock_pads)

    def test_struct_lock_field(self):
        plan = plan_for(
            "struct c { lock_t lk; int v; }; struct c cells[16];",
            "    lock(&cells[pid % 16].lk);\n"
            "    cells[pid % 16].v += 1;\n"
            "    unlock(&cells[pid % 16].lk);",
        )
        assert any(lp.struct_field == ("c", "lk") for lp in plan.lock_pads)


class TestPlanMachinery:
    def test_restricted_to(self, counter_checked):
        pa = analyze_program(counter_checked, 8)
        plan = decide_transformations(pa)
        only_locks = plan.restricted_to({"locks"})
        assert only_locks.lock_pads and not only_locks.group
        nothing = plan.restricted_to(set())
        assert nothing.is_empty

    def test_describe_readable(self, counter_checked):
        pa = analyze_program(counter_checked, 8)
        plan = decide_transformations(pa)
        text = plan.describe()
        assert "group & transpose" in text or "pad" in text

    def test_decisions_logged_for_all_targets(self, counter_checked):
        pa = analyze_program(counter_checked, 8)
        plan = decide_transformations(pa)
        assert len(plan.decisions) >= len(pa.patterns) - 2
