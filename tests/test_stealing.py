"""Seeded randomized-work-stealing properties.

The steal scheduler is stochastic by design, so these tests pin down
the properties that make it usable in a reproduction pipeline:

* **Determinism** — the same (program, nprocs, seed) triple replays the
  exact same schedule: bit-identical trace, miss breakdown, and
  manifest record across repeated runs, under both simulator kernels
  and through both the batch and streamed execution paths.
* **Seed sensitivity** — different seeds genuinely explore different
  interleavings (otherwise the rws experiment measures nothing).
* **Round-robin regression** — adding the scheduler axis must not
  perturb the deterministic rr traces the golden suite froze.
* **Cache-key regression** — the persistent trace cache joins the
  scheduler into its key; before that fix a steal run silently
  replayed whatever rr trace was stored for the same source.
* **Metamorphics** — write profiles are schedule-invariant, race-free
  programs compute the same answer under any schedule, and the oracle
  stays sound when its runs execute under stealing.
* **Bound** — measured steal-schedule false sharing stays within the
  Cole–Ramachandran O(steals) prediction (arXiv:1103.4142) on the
  paper workloads.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from conftest import COUNTER_SRC, HEAP_SRC
from repro.harness.experiments import rws
from repro.harness.pipeline import Pipeline
from repro.lang import compile_source
from repro.layout import DataLayout
from repro.obs import manifest
from repro.runtime import run_program, trace_cache
from repro.runtime.stealing import (
    RR,
    SchedConfig,
    fs_bound,
    resolve_sched,
)
from repro.sim import CacheConfig, simulate_run
from repro.sim.kernel import load_kernel
from repro.sim.simcache import cached_simulate
from repro.verify import invariants, oracle, progen

NPROCS = 4
STEAL = SchedConfig("steal", seed=7)

KERNELS = [
    "python",
    pytest.param(
        "native",
        marks=pytest.mark.skipif(
            load_kernel() is None,
            reason="native kernel unavailable (no compiler?)",
        ),
    ),
]


def interpret(source: str, sched: SchedConfig, nprocs: int = NPROCS):
    checked = compile_source(source)
    layout = DataLayout(checked, None, block_size=128, nprocs=nprocs)
    return run_program(checked, layout, nprocs, sched=sched)


@pytest.fixture(scope="module")
def counter_steal():
    return interpret(COUNTER_SRC, STEAL)


@pytest.fixture(scope="module")
def counter_rr():
    return interpret(COUNTER_SRC, RR)


# -- determinism -------------------------------------------------------------


def miss_tuple(run, block_size=64):
    m = simulate_run(run, block_size).misses
    return (m.cold, m.replace, m.true_sharing, m.false_sharing)


def manifest_record(run, block_size=64):
    """The manifest record a steal run would log, minus the fields that
    legitimately vary between identical runs (timestamps, wall-clock
    perf counters, span timings)."""
    rec = manifest.sim_record(
        kind="test",
        workload="counter",
        source=COUNTER_SRC,
        plan_desc="natural",
        nprocs=run.nprocs,
        block_size=block_size,
        sim=simulate_run(run, block_size),
        extra={"sched": run.sched},
    )
    for volatile in ("ts", "perf", "spans"):
        rec.pop(volatile, None)
    return rec


def test_same_seed_bit_identical_20_runs(counter_steal):
    """The tentpole reproducibility claim: one seed, one schedule."""
    want_fp = counter_steal.trace.fingerprint
    want_misses = miss_tuple(counter_steal)
    want_rec = manifest_record(counter_steal)
    for _ in range(19):
        run = interpret(COUNTER_SRC, STEAL)
        assert run.trace.fingerprint == want_fp
        assert run.output == counter_steal.output
        assert run.exit_value == counter_steal.exit_value
        assert run.sched == counter_steal.sched
        assert miss_tuple(run) == want_misses
        assert manifest_record(run) == want_rec


@pytest.mark.parametrize("kernel", KERNELS)
def test_steal_trace_identical_misses_across_kernels(counter_steal, kernel):
    """Both protocol cores agree on a steal-scheduled trace."""
    config = CacheConfig(size=32 * 1024, block_size=64, assoc=4)
    res = cached_simulate(
        counter_steal.trace,
        counter_steal.nprocs,
        config,
        extra_refs=sum(counter_steal.private_refs.values()),
        kernel=kernel,
    )
    m = res.misses
    assert (m.cold, m.replace, m.true_sharing, m.false_sharing) == miss_tuple(
        counter_steal
    )


def test_streamed_path_matches_batch_under_steal(monkeypatch, tmp_path):
    """O(chunk)-memory streaming replays the same stochastic schedule."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    cfg = SchedConfig("steal", seed=11)
    batch = Pipeline(COUNTER_SRC, block_size=64, sched=cfg)
    vr = batch.execute(NPROCS)
    want = vr.simulate(64).misses
    streamed = Pipeline(COUNTER_SRC, block_size=64, sched=cfg)
    res, svr = streamed.simulate_streamed(NPROCS, chunk_refs=128)
    got = res.misses
    assert (got.cold, got.replace, got.true_sharing, got.false_sharing) == (
        want.cold,
        want.replace,
        want.true_sharing,
        want.false_sharing,
    )
    assert svr.run.sched == vr.run.sched
    assert svr.run.output == vr.run.output


def test_different_seeds_diverge():
    """Seeds must explore distinct interleavings, not relabel one."""
    fps = {
        interpret(COUNTER_SRC, SchedConfig("steal", seed=s)).trace.fingerprint
        for s in (1, 2, 3, 4)
    }
    assert len(fps) > 1


def test_steal_stats_recorded(counter_steal, counter_rr):
    stats = counter_steal.sched
    assert stats is not None and stats["kind"] == "steal"
    assert stats["seed"] == 7
    assert stats["steal_attempts"] >= stats["steals"] >= 0
    assert counter_rr.sched is None  # rr runs carry no stochastic state


# -- round-robin regression --------------------------------------------------


def test_rr_trace_unchanged_by_scheduler_axis(counter_rr, monkeypatch):
    """Explicit RR, env-resolved default, and env-forced rr all produce
    the same trace the pre-scheduler pipeline produced (the golden
    suite freezes the actual values; this pins the equivalences)."""
    monkeypatch.delenv("REPRO_SCHED", raising=False)
    default = interpret(COUNTER_SRC, resolve_sched())
    assert default.trace.fingerprint == counter_rr.trace.fingerprint
    monkeypatch.setenv("REPRO_SCHED", "rr")
    forced = interpret(COUNTER_SRC, resolve_sched())
    assert forced.trace.fingerprint == counter_rr.trace.fingerprint
    # under rr every reference is tagged with its owner's pid
    procs = set(np.unique(counter_rr.trace.proc).tolist())
    assert procs <= set(range(NPROCS)) | {-1}


def test_steal_proc_column_is_layout_invariant():
    """The RNG consumes draws only at spawn placement and victim
    selection — never from addresses — so transforming the layout must
    not change which cpu executes each reference.  This is what makes
    the natural-vs-transformed oracle comparison sound under steal."""
    cfg = SchedConfig("steal", seed=13)
    natural = Pipeline(COUNTER_SRC, sched=cfg)
    nat = natural.execute(NPROCS, None, "N")
    padded = natural.execute(
        NPROCS, natural.compiler_plan(NPROCS), "C"
    )
    assert not np.array_equal(nat.run.trace.addr, padded.run.trace.addr)
    assert np.array_equal(nat.run.trace.proc, padded.run.trace.proc)


# -- trace-cache key regression ----------------------------------------------


def test_run_key_joins_scheduler():
    base = dict(
        plan_desc="natural", nprocs=4, block_size=128,
        quantum=4, max_steps=1000,
    )
    rr_key = trace_cache.run_key(COUNTER_SRC, **base)
    assert rr_key == trace_cache.run_key(COUNTER_SRC, **base, sched="rr")
    steal1 = trace_cache.run_key(
        COUNTER_SRC, **base, sched=SchedConfig("steal", seed=1).describe()
    )
    steal2 = trace_cache.run_key(
        COUNTER_SRC, **base, sched=SchedConfig("steal", seed=2).describe()
    )
    assert len({rr_key, steal1, steal2}) == 3


def test_steal_run_never_replays_rr_cache_entry(monkeypatch, tmp_path):
    """The bug this schema rev fixed: with the scheduler missing from
    the key, the second pipeline below hit the rr entry and returned a
    round-robin trace labelled as a steal run."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "0")
    rr_vr = Pipeline(COUNTER_SRC, sched=RR).execute(NPROCS)
    assert not rr_vr.from_cache
    assert Pipeline(COUNTER_SRC, sched=RR).execute(NPROCS).from_cache

    steal_cfg = SchedConfig("steal", seed=3)
    steal_vr = Pipeline(COUNTER_SRC, sched=steal_cfg).execute(NPROCS)
    assert not steal_vr.from_cache  # pre-fix: True (stale rr hit)
    assert steal_vr.run.sched is not None

    replay = Pipeline(COUNTER_SRC, sched=steal_cfg).execute(NPROCS)
    assert replay.from_cache
    assert replay.run.trace.fingerprint == steal_vr.run.trace.fingerprint
    assert replay.run.sched == steal_vr.run.sched


# -- metamorphics ------------------------------------------------------------


def test_write_profile_schedule_invariant(counter_rr):
    """Spin probes are reads, so the multiset of written (addr, size)
    pairs cannot depend on the interleaving."""
    want = invariants.write_profile(counter_rr.trace)
    for seed in (1, 2, 3):
        run = interpret(COUNTER_SRC, SchedConfig("steal", seed=seed))
        assert invariants.write_profile(run.trace) == want


def test_schedule_independence_clean_on_race_free_program(
    counter_rr, counter_steal
):
    msgs = invariants.check_schedule_independence(
        counter_rr, counter_steal, deterministic=True
    )
    assert msgs == []


def test_schedule_independence_flags_output_divergence(
    counter_rr, counter_steal
):
    forged = dataclasses.replace(counter_steal, output=["999999"])
    msgs = invariants.check_schedule_independence(
        counter_rr, forged, deterministic=True
    )
    assert any("output" in m for m in msgs)
    # a non-deterministic program may legitimately print different
    # values, so the output check must be gated on determinism
    assert (
        invariants.check_schedule_independence(
            counter_rr, forged, deterministic=False
        )
        == []
    )


def test_schedule_independence_flags_write_profile_mismatch(counter_rr):
    other = interpret(HEAP_SRC, STEAL)
    msgs = invariants.check_schedule_independence(
        counter_rr, other, deterministic=False
    )
    assert any("write" in m for m in msgs)


def test_is_schedule_deterministic_partitions_seeds():
    verdicts = [
        progen.is_schedule_deterministic(progen.generate(s))
        for s in range(40)
    ]
    assert any(verdicts) and not all(verdicts)


def test_oracle_sound_under_steal():
    verdicts, base = oracle.check_program(
        compile_source(COUNTER_SRC), NPROCS,
        sched=SchedConfig("steal", seed=5),
    )
    assert verdicts and all(v.ok for v in verdicts)
    assert base.sched is not None and base.sched["kind"] == "steal"


def test_no_false_sharing_at_word_blocks_under_steal(counter_steal):
    """Word-size blocks cannot false-share no matter how references
    migrate between cpus."""
    assert simulate_run(counter_steal, 4).misses.false_sharing == 0


# -- the Cole-Ramachandran bound ---------------------------------------------


def test_fs_bound_shape():
    assert fs_bound(100, 0, 4, 4) >= 100
    assert fs_bound(100, 50, 128, 4) > fs_bound(100, 50, 4, 4)
    assert fs_bound(100, 50, 128, 4) > fs_bound(100, 10, 128, 4)


@pytest.mark.slow
def test_rws_experiment_within_bound():
    """The acceptance sweep: three paper workloads, word / 64B / 128B
    blocks, every point within the predicted O(steals) envelope."""
    result = rws(proc_counts=(NPROCS,), seeds=(1,), block_sizes=(4, 64, 128))
    assert result.ok, "\n".join(
        f"{p.workload} bs={p.block_size}: fs_steal={p.fs_steal} "
        f"> bound={p.bound}"
        for p in result.violations()
    )
    assert {p.workload for p in result.points} == {
        "Maxflow", "Pverify", "Radiosity",
    }
    assert {p.block_size for p in result.points} == {4, 64, 128}
    for p in result.points:
        if p.block_size == 4:
            assert p.fs_steal == 0
