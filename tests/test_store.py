"""The run-record store: ingest, sharding, indexes, queries.

Covers the ISSUE-7 acceptance surface: idempotent content-hash ingest,
corrupt/truncated JSONL handled by skip-and-log (never aborting the
batch), concurrent manifest writers and concurrent ingesters, the
round-trip property (ingest -> query returns the source records), and
the warm grouped-aggregate query over 1,000+ records in under a second.
"""

import json
import multiprocessing as mp
import time

import pytest

from repro.obs import manifest
from repro.obs.query import (
    Aggregate,
    Filter,
    Query,
    QueryError,
    get_field,
    parse_when,
    percentile,
    run_query,
)
from repro.obs.store import IngestReport, RunStore, record_id


def make_record(i: int, *, workload="Maxflow/N", block_size=128, fs=400,
                ts=None, **extra) -> dict:
    rec = {
        "schema": 3,
        "ts": ts or f"2026-08-{1 + i % 27:02d}T{i % 24:02d}:00:{i % 60:02d}+00:00",
        "kind": "experiment",
        "workload": workload,
        "source_sha256": "a" * 64,
        "plan": "natural",
        "nprocs": 12,
        "block_size": block_size,
        "machine": {
            "name": "ksr2", "protocol": "msi", "line_size": block_size,
            "cache_size": 32768, "assoc": 4, "block_size": block_size,
        },
        "kernel": "python",
        "chunk_size": None,
        "stream": {},
        "dynamic": {},
        "refs": 1000 + i,
        "trace_len": 1000 + i,
        "misses": {"cold": 10, "replace": 5, "true": 7, "false": fs},
        "fs_by_structure": {"counter": fs},
        "perf": {"trace_cache.hit": i, "trace_cache.miss": 1},
        "spans": {"pipeline.execute": 0.5},
        "wall_seconds": 1.0 + (i % 10) / 100.0,
    }
    rec.update(extra)
    return rec


def write_log(path, records):
    path.write_text(
        "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"
    )
    return path


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "store")


class TestIngest:
    def test_roundtrip_ingest_query(self, store, tmp_path):
        """The round-trip property: every ingested record comes back,
        field-identical, from an unfiltered query."""
        records = [
            make_record(i, workload=w, block_size=bs, fs=100 * (i + 1))
            for i, (w, bs) in enumerate(
                (w, bs)
                for w in ("Maxflow/N", "Water/C", "Barnes/N")
                for bs in (16, 64, 128)
            )
        ]
        log = write_log(tmp_path / "runs.jsonl", records)
        rep = store.ingest(log)
        assert rep.ingested == len(records)
        assert rep.corrupt == 0 and rep.duplicates == 0
        got = {r["id"]: r for r in store.records()}
        assert len(got) == len(records)
        for rec in records:
            rid = record_id(manifest.upgrade_record(rec))
            stored = got[rid]
            for key, val in rec.items():
                assert stored[key] == val, key

    def test_reingest_is_idempotent(self, store, tmp_path):
        records = [make_record(i) for i in range(20)]
        log = write_log(tmp_path / "runs.jsonl", records)
        first = store.ingest(log)
        assert first.ingested == 20
        again = store.ingest(log)
        assert again.ingested == 0
        assert again.duplicates == 20
        assert store.count() == 20

    def test_corrupt_lines_skipped_never_fatal(self, store, tmp_path):
        """Garbage, truncated JSON, and non-object lines are counted
        and skipped; every valid record in the batch still lands."""
        log = tmp_path / "runs.jsonl"
        good = [make_record(i) for i in range(5)]
        lines = [json.dumps(good[0]), "not json at all",
                 json.dumps(good[1]), '{"truncated": ',
                 json.dumps(good[2]), '[1, 2, 3]',
                 json.dumps(good[3]), '"just a string"',
                 json.dumps(good[4])]
        # truncated *final* line with no newline: a writer mid-append
        log.write_text("\n".join(lines) + "\n" + json.dumps(good[0])[:40])
        rep = store.ingest(log)
        assert rep.ingested == 5
        assert rep.corrupt == 5  # 2 garbage + 2 non-objects + 1 truncated
        assert store.count() == 5

    def test_schema1_records_upgraded_on_ingest(self, store, tmp_path):
        old = {
            "schema": 1, "ts": "2026-01-01T00:00:00+00:00",
            "kind": "profile", "workload": "Maxflow/N",
            "misses": {"false": 42},
        }
        store.ingest(write_log(tmp_path / "old.jsonl", [old]))
        (rec,) = store.records()
        assert rec["schema"] == manifest.SCHEMA
        assert rec["kernel"] is None
        assert rec["stream"] == {} and rec["chunk_size"] is None
        assert rec["dynamic"] == {}
        assert rec["misses"]["false"] == 42

    def test_schema2_records_upgraded_on_ingest(self, store, tmp_path):
        """A schema-2 machine dict (geometry only) gains the implied
        KSR2/MSI identity on ingest."""
        old = make_record(0)
        old["schema"] = 2
        old["machine"] = {"cache_size": 32768, "assoc": 4, "block_size": 64}
        del old["dynamic"]
        store.ingest(write_log(tmp_path / "old2.jsonl", [old]))
        (rec,) = store.records()
        assert rec["schema"] == manifest.SCHEMA
        assert rec["machine"]["name"] == "ksr2"
        assert rec["machine"]["protocol"] == "msi"
        assert rec["machine"]["line_size"] == 64
        assert rec["dynamic"] == {}

    def test_ingest_report_describe(self):
        rep = IngestReport(scanned=10, ingested=7, duplicates=3, corrupt=2)
        assert "7 of 10" in rep.describe()
        assert "2 corrupt" in rep.describe()


class TestShardsAndIndexes:
    def test_sharding_spreads_and_preserves_count(self, store, tmp_path):
        records = [make_record(i, fs=i) for i in range(64)]
        store.ingest(write_log(tmp_path / "r.jsonl", records))
        shard_files = list((store.root / "shards").glob("*.jsonl"))
        assert len(shard_files) > 4  # sha256 spreads over the 16 shards
        assert store.count() == 64

    def test_index_self_heals_after_corruption(self, store, tmp_path):
        records = [make_record(i) for i in range(16)]
        store.ingest(write_log(tmp_path / "r.jsonl", records))
        for ipath in (store.root / "index").glob("*.json"):
            ipath.write_text("{broken")
        fresh = RunStore(store.root)
        assert fresh.count() == 16

    def test_stale_index_detected_by_line_count(self, store, tmp_path):
        records = [make_record(i) for i in range(8)]
        store.ingest(write_log(tmp_path / "r.jsonl", records))
        # sneak a record into a shard behind the index's back
        extra = manifest.upgrade_record(make_record(99, fs=7))
        extra["id"] = record_id(extra)
        digit = extra["id"][0]
        with open(store.shard_path(digit), "a") as fh:
            fh.write(json.dumps(extra) + "\n")
        fresh = RunStore(store.root)
        assert fresh.count() == 9  # line-count mismatch forced a rebuild

    def test_compact_dedups_and_sorts(self, store, tmp_path):
        records = [make_record(i) for i in range(10)]
        store.ingest(write_log(tmp_path / "r.jsonl", records))
        # duplicate a shard's lines wholesale, then corrupt one line
        for spath in (store.root / "shards").glob("*.jsonl"):
            text = spath.read_text()
            spath.write_text(text + text + "garbage\n")
            break
        stats = store.compact()
        assert stats["records"] == 10
        assert stats["dropped"] >= 1
        assert store.count() == 10
        for spath in (store.root / "shards").glob("*.jsonl"):
            ts = [json.loads(l)["ts"] for l in spath.read_text().splitlines()]
            assert ts == sorted(ts)


def _append_worker(args):
    """Concurrent-writer worker: append records through the manifest's
    line-atomic writer."""
    log_path, worker, n = args
    import os

    os.environ[manifest.RUN_LOG_ENV] = log_path
    for i in range(n):
        manifest.record(make_record(i, workload=f"W{worker}", fs=worker))
    return worker


def _ingest_worker(args):
    root, log_path = args
    rep = RunStore(root).ingest(log_path)
    return rep.ingested, rep.duplicates


class TestConcurrency:
    def test_concurrent_manifest_writers(self, tmp_path):
        """Several processes appending to one REPRO_RUN_LOG: every line
        stays parseable (line-atomic appends) and every record lands."""
        log = tmp_path / "shared.jsonl"
        workers, per = 4, 25
        with mp.get_context("spawn").Pool(workers) as pool:
            pool.map(
                _append_worker,
                [(str(log), w, per) for w in range(workers)],
            )
        recs = manifest.read_all(log)
        assert len(recs) == workers * per
        assert {r["workload"] for r in recs} == {f"W{w}" for w in range(workers)}

    def test_concurrent_ingest_no_duplicates(self, tmp_path):
        """Two ingesters racing on the same store and overlapping logs:
        the flock serializes them, content hashes dedup them."""
        records = [make_record(i, fs=i) for i in range(40)]
        log_a = write_log(tmp_path / "a.jsonl", records)
        log_b = write_log(tmp_path / "b.jsonl", records[20:] +
                          [make_record(i + 100) for i in range(10)])
        root = str(tmp_path / "store")
        with mp.get_context("spawn").Pool(2) as pool:
            results = pool.map(
                _ingest_worker,
                [(root, str(log_a)), (root, str(log_b))],
            )
        assert sum(i for i, _d in results) == 50  # 40 + 10 unique
        assert RunStore(root).count() == 50


class TestQuery:
    @pytest.fixture()
    def filled(self, store, tmp_path):
        records = []
        i = 0
        for w in ("Maxflow/N", "Maxflow/C", "Water/N"):
            for bs in (16, 128):
                for _ in range(5):
                    records.append(
                        make_record(
                            i, workload=w, block_size=bs,
                            fs=500 if w.endswith("N") else 50,
                            kernel="native" if i % 2 else "python",
                        )
                    )
                    i += 1
        store.ingest_records(records)
        return store

    def test_field_access_longest_match(self):
        rec = {"perf": {"trace_cache.hit": 9}, "misses": {"false": 3}}
        assert get_field(rec, "perf.trace_cache.hit") == 9
        assert get_field(rec, "misses.false") == 3
        assert get_field(rec, "fs") == 3  # alias
        assert get_field(rec, "nope.nope") is None

    def test_filter_ops(self):
        rec = {"block_size": 128, "workload": "Maxflow/N", "x": 1.5}
        assert Filter.parse("block_size=128").matches(rec)
        assert Filter.parse("block_size>=128").matches(rec)
        assert not Filter.parse("block_size<128").matches(rec)
        assert Filter.parse("workload~maxflow").matches(rec)
        assert Filter.parse("workload!=Water/N").matches(rec)
        assert Filter.parse("x>1").matches(rec)
        with pytest.raises(QueryError):
            Filter.parse("nonsense")

    def test_time_window(self):
        assert parse_when("2026-08-01") == "2026-08-01"
        rel = parse_when("7d")
        assert rel.startswith("20")  # resolved to an ISO instant
        with pytest.raises(QueryError):
            parse_when("someday")

    def test_percentiles(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3
        assert percentile([1, 2, 3, 4], 0.5) == 2.5
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_grouped_aggregate(self, filled):
        q = Query.build(
            group_by="workload,block_size",
            aggregates=["mean:fs", "count", "p95:wall_seconds"],
        )
        res = run_query(filled, q)
        assert res.columns == [
            "workload", "block_size", "mean(misses.false)", "count",
            "p95(wall_seconds)",
        ]
        assert len(res.rows) == 6
        by_key = {(r["workload"], r["block_size"]): r for r in res.rows}
        assert by_key[("Maxflow/N", 128)]["mean(misses.false)"] == 500
        assert by_key[("Maxflow/C", 16)]["mean(misses.false)"] == 50
        assert all(r["count"] == 5 for r in res.rows)

    def test_where_and_window_prune(self, filled):
        q = Query.build(where=["workload=Water/N", "block_size=128"])
        res = run_query(filled, q)
        assert res.matched == 5
        # equality filter on an indexed column prunes non-matching shards
        q2 = Query.build(where=["workload=DoesNotExist"])
        res2 = run_query(filled, q2)
        assert res2.matched == 0
        assert res2.shards_pruned == 16

    def test_sort_and_limit(self, filled):
        q = Query.build(
            group_by="workload", aggregates=["mean:fs"],
            sort="-mean(misses.false)", limit=2,
        )
        res = run_query(filled, q)
        assert len(res.rows) == 2
        vals = [r["mean(misses.false)"] for r in res.rows]
        assert vals == sorted(vals, reverse=True)

    def test_output_formats(self, filled):
        q = Query.build(group_by="workload", aggregates=["count"])
        res = run_query(filled, q)
        table = res.to_table()
        assert "workload" in table and "count" in table
        data = json.loads(res.to_json())
        assert data["columns"] == ["workload", "count"]
        csv_text = res.to_csv()
        assert csv_text.splitlines()[0] == "workload,count"
        assert len(csv_text.splitlines()) == 1 + len(res.rows)

    def test_aggregate_parse_errors(self):
        with pytest.raises(QueryError):
            Aggregate.parse("median:fs")
        with pytest.raises(QueryError):
            Aggregate.parse("mean")  # needs a field

    def test_grouped_query_1000_records_under_a_second(self, store):
        """The ISSUE-7 acceptance bar: a grouped aggregate over 1,000+
        stored records answers in < 1 s warm."""
        records = [
            make_record(
                i,
                workload=("Maxflow/N", "Water/C", "Barnes/N")[i % 3],
                block_size=(16, 64, 128)[i % 3],
                fs=100 + i % 50,
            )
            for i in range(1200)
        ]
        store.ingest_records(records)
        assert store.count() == 1200
        q = Query.build(group_by="workload,block_size",
                        aggregates=["mean:fs", "count"])
        run_query(store, q)  # warm the page cache / indexes
        t0 = time.perf_counter()
        res = run_query(store, q)
        elapsed = time.perf_counter() - t0
        assert res.matched == 1200
        assert sum(r["count"] for r in res.rows) == 1200
        assert elapsed < 1.0, f"grouped query took {elapsed:.2f}s"
