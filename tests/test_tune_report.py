"""End-to-end tuning acceptance on the bundled workloads.

These tests pin the issue's acceptance criteria:

* on Maxflow the tuner finds a plan strictly better than the section-3.3
  heuristic's under the default (fs, cycles) objective, and every
  Pareto-front member passes the equivalence oracle;
* on Raytrace greedy and beam evaluate strictly fewer candidates than
  exhaustive while matching its best objective on the small space;
* widening the space past the static-profile frequency bar recovers the
  residual false sharing the paper reports (the busy low-weight scalar).
"""

import json

import pytest

from repro.tune import (
    Objective,
    bench_point,
    render_tune_report,
    tune_workload,
    write_bench_point,
)
from repro.workloads.registry import by_name


@pytest.fixture(scope="module")
def maxflow_report():
    return tune_workload(
        by_name("Maxflow"), nprocs=4, strategy="greedy", top=5, budget=60
    )


@pytest.fixture(scope="module")
def raytrace_reports():
    return {
        strategy: tune_workload(
            by_name("Raytrace"),
            nprocs=4,
            strategy=strategy,
            top=3,
            budget=None,
        )
        for strategy in ("exhaustive", "greedy", "beam")
    }


class TestMaxflowAcceptance:
    def test_tuned_beats_heuristic(self, maxflow_report):
        r = maxflow_report
        assert r.improved and r.matched
        assert r.best.score.fs_misses < r.heuristic.score.fs_misses
        assert r.best.score.cycles < r.heuristic.score.cycles

    def test_front_verified_by_oracle(self, maxflow_report):
        r = maxflow_report
        assert r.front
        assert r.all_verified
        assert all(m.verdict == "ok" for m in r.front)

    def test_best_is_on_the_front(self, maxflow_report):
        r = maxflow_report
        assert r.best.fingerprint in {m.fingerprint for m in r.front}

    def test_render_mentions_the_win(self, maxflow_report):
        text = render_tune_report(maxflow_report)
        assert "tune Maxflow" in text
        assert "heuristic" in text and "tuned best" in text
        assert "tuned plan wins" in text
        assert "Pareto front" in text


class TestRaytraceStrategies:
    def test_exhaustive_covers_space(self, raytrace_reports):
        r = raytrace_reports["exhaustive"]
        assert (
            r.outcome.evaluations + r.outcome.dedup_hits >= r.space.size
        )

    def test_greedy_and_beam_evaluate_strictly_fewer(
        self, raytrace_reports
    ):
        ex = raytrace_reports["exhaustive"].outcome.evaluations
        assert raytrace_reports["greedy"].outcome.evaluations < ex
        assert raytrace_reports["beam"].outcome.evaluations < ex

    def test_all_strategies_match_exhaustive_best(self, raytrace_reports):
        obj = Objective()
        keys = {
            strategy: obj.key(r.best.score)
            for strategy, r in raytrace_reports.items()
        }
        assert keys["greedy"] == keys["exhaustive"]
        assert keys["beam"] == keys["exhaustive"]

    def test_never_worse_than_heuristic(self, raytrace_reports):
        for r in raytrace_reports.values():
            assert r.matched
            assert r.all_verified


class TestResidualFalseSharing:
    def test_wider_space_recovers_busy_scalar(self):
        """The paper's Raytrace residual: a busy scalar the *static*
        profile ranks too low for the heuristic's frequency bar.  With
        enough structures in the space, the simulator-guided search pads
        it anyway and eliminates the remaining false sharing."""
        r = tune_workload(
            by_name("Raytrace"), nprocs=4, strategy="greedy", top=8,
            budget=80,
        )
        assert r.improved
        assert r.best.score.fs_misses < r.heuristic.score.fs_misses
        assert r.all_verified


class TestBenchPoint:
    def test_point_fields(self, maxflow_report):
        p = bench_point(maxflow_report)
        assert p["workload"] == "Maxflow"
        assert p["improved"] and p["matched"] and p["all_verified"]
        assert p["tuned_fs"] <= p["heuristic_fs"]
        assert p["evaluations"] > 0 and p["space_size"] > 0

    def test_write_appends(self, maxflow_report, tmp_path):
        path = str(tmp_path / "bench" / "BENCH_tune.json")
        write_bench_point(maxflow_report, path)
        write_bench_point(maxflow_report, path)
        with open(path) as fh:
            points = json.load(fh)
        assert isinstance(points, list) and len(points) == 2
        assert points[0]["workload"] == "Maxflow"

    def test_corrupt_file_recovered(self, maxflow_report, tmp_path):
        path = tmp_path / "BENCH_tune.json"
        path.write_text("{not json")
        write_bench_point(maxflow_report, str(path))
        points = json.loads(path.read_text())
        assert len(points) == 1
