"""Performance-engine infrastructure tests: the persistent trace
cache, the per-trace simulation memo, the perf counters, the
interpreter's yield-free fast path, and the parallel experiment lab's
plan resolution."""

import os

import numpy as np
import pytest

from repro import perf
from repro.harness.experiments import WorkloadLab, sweep_points
from repro.harness.parallel import default_jobs, resolve_plan
from repro.harness.pipeline import Pipeline
from repro.layout import DataLayout
from repro.runtime import run_program, trace_cache
from repro.runtime.trace import Trace, TraceBuffer
from repro.sim import CacheConfig
from repro.sim.simcache import cached_simulate, clear
from repro.workloads.registry import SIMULATION_WORKLOADS, by_name


# ---------------------------------------------------------------------------
# perf counters
# ---------------------------------------------------------------------------


class TestPerf:
    def test_add_and_get(self):
        perf.reset()
        perf.add("x")
        perf.add("x", 2)
        assert perf.get("x") == 3.0
        assert perf.get("missing") == 0.0

    def test_timer_accumulates(self):
        perf.reset()
        with perf.timer("stage"):
            pass
        with perf.timer("stage"):
            pass
        snap = perf.snapshot()
        assert snap["stage.calls"] == 2.0
        assert snap["stage"] >= 0.0

    def test_merge_and_reset(self):
        perf.reset()
        perf.add("a", 1)
        perf.merge({"a": 2.0, "b": 5.0})
        assert perf.get("a") == 3.0 and perf.get("b") == 5.0
        perf.reset()
        assert perf.snapshot() == {}


# ---------------------------------------------------------------------------
# trace buffer / trace
# ---------------------------------------------------------------------------


class TestTrace:
    def test_buffer_roundtrip_and_nbytes(self):
        buf = TraceBuffer()
        buf.append(0, 64, 4, False)
        buf.append(1, 68, 8, True)
        assert buf.nbytes > 0
        tr = buf.freeze()
        assert list(tr) == [(0, 64, 4, False), (1, 68, 8, True)]
        assert tr.nbytes > 0

    def test_fingerprint_content_keyed(self):
        a = TraceBuffer()
        b = TraceBuffer()
        for buf in (a, b):
            buf.append(0, 0, 4, True)
            buf.append(2, 128, 4, False)
        t1, t2 = a.freeze(), b.freeze()
        assert t1.fingerprint == t2.fingerprint
        c = TraceBuffer()
        c.append(0, 0, 4, False)
        c.append(2, 128, 4, False)
        assert c.freeze().fingerprint != t1.fingerprint


# ---------------------------------------------------------------------------
# persistent trace cache
# ---------------------------------------------------------------------------


def small_run(nprocs=2):
    wl = by_name("Pverify")
    pipe = Pipeline(wl.source)
    return pipe, pipe.execute(nprocs)


class TestTraceCache:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "1")
        _, vr = small_run()
        key = trace_cache.run_key("src", "plan", 2, 128, 4, 100)
        assert trace_cache.store_run(key, vr.run)
        got = trace_cache.load_run(key)
        assert got is not None
        assert np.array_equal(got.trace.addr, vr.run.trace.addr)
        assert np.array_equal(got.trace.proc, vr.run.trace.proc)
        assert got.work == vr.run.work
        assert got.heap_segments == vr.run.heap_segments
        assert got.output == vr.run.output

    def test_pipeline_hit_skips_interpretation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "1")
        wl = by_name("Pverify")
        cold = Pipeline(wl.source).execute(2)
        assert not cold.from_cache and cold.interp_seconds > 0
        warm = Pipeline(wl.source).execute(2)
        assert warm.from_cache and warm.interp_seconds == 0.0
        assert np.array_equal(warm.run.trace.addr, cold.run.trace.addr)

    def test_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert trace_cache.cache_dir() is None
        _, vr = small_run()
        assert not trace_cache.store_run("k" * 64, vr.run)

    def test_min_refs_threshold(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "10000000")
        _, vr = small_run()
        assert not trace_cache.store_run("k" * 64, vr.run)

    def test_corrupt_entry_dropped(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        key = trace_cache.run_key("s", "p", 2, 128, 4, 100)
        (tmp_path / f"{key}.npz").write_bytes(b"not an npz")
        perf.reset()
        assert trace_cache.load_run(key) is None
        assert perf.get("trace_cache.corrupt") == 1.0
        assert not (tmp_path / f"{key}.npz").exists()

    def test_truncated_entry_recomputed(self, tmp_path, monkeypatch):
        """A half-written .npz falls back to recomputation, not a crash.

        Truncation is caught one layer down now: the artifact store's
        size check fails before numpy ever sees the payload."""
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "1")
        _, vr = small_run()
        key = trace_cache.run_key("src", "plan", 2, 128, 4, 100)
        assert trace_cache.store_run(key, vr.run)
        path = trace_cache.entry_path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        perf.reset()
        assert trace_cache.load_run(key) is None
        assert perf.get("artifacts.corrupt") == 1.0
        assert not path.exists()  # the bad entry is gone for good
        # and a fresh store round-trips again
        assert trace_cache.store_run(key, vr.run)
        assert trace_cache.load_run(key) is not None

    def test_stale_key_collision_detected(self, tmp_path, monkeypatch):
        """An entry stored under one key must never satisfy another key
        (file renames / hash-prefix reuse): entries echo their own key
        and the echo is checked on load."""
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "1")
        _, vr = small_run()
        key_a = trace_cache.run_key("src-a", "plan", 2, 128, 4, 100)
        key_b = trace_cache.run_key("src-b", "plan", 2, 128, 4, 100)
        assert trace_cache.store_run(key_a, vr.run)
        # masquerade A's payload as B's entry (published properly, so
        # only the key echo inside the npz can catch the swap)
        trace_cache.store().adopt_file(
            "trace", key_b, trace_cache.entry_path(key_a), ".npz"
        )
        perf.reset()
        assert trace_cache.load_run(key_b) is None
        assert perf.get("trace_cache.corrupt") == 1.0
        # the honest entry is untouched
        assert trace_cache.load_run(key_a) is not None

    def test_missing_meta_fields_rejected(self, tmp_path, monkeypatch):
        """Entries from an older layout (no key echo) are recomputed."""
        import json

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "1")
        _, vr = small_run()
        key = trace_cache.run_key("src", "plan", 2, 128, 4, 100)
        assert trace_cache.store_run(key, vr.run)
        path = trace_cache.entry_path(key)
        with np.load(path, allow_pickle=False) as z:
            data = {name: z[name] for name in z.files}
        meta = json.loads(bytes(data["meta"]).decode())
        del meta["key"]
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        doctored = tmp_path / "doctored.npz"
        np.savez(doctored, **data)
        # republish so the store sidecar matches the doctored payload
        trace_cache.store().adopt_file("trace", key, doctored, ".npz",
                                       move=True)
        perf.reset()
        assert trace_cache.load_run(key) is None
        assert perf.get("trace_cache.corrupt") == 1.0

    def test_key_sensitivity(self):
        k = trace_cache.run_key("s", "p", 2, 128, 4, 100)
        assert k != trace_cache.run_key("s", "p", 3, 128, 4, 100)
        assert k != trace_cache.run_key("s", "q", 2, 128, 4, 100)
        assert k == trace_cache.run_key("s", "p", 2, 128, 4, 100)

    def test_prune(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "1")
        _, vr = small_run()  # execute() itself persists one entry
        trace_cache.store_run("a" * 64, vr.run)
        assert trace_cache.prune() >= 1
        assert trace_cache.prune() == 0


# ---------------------------------------------------------------------------
# simulation memo
# ---------------------------------------------------------------------------


class TestSimMemo:
    def test_memo_returns_same_result(self):
        clear()
        tr = Trace(
            proc=np.zeros(6, dtype=np.int32),
            addr=np.arange(6, dtype=np.int64) * 4,
            size=np.full(6, 4, dtype=np.int32),
            is_write=np.zeros(6, dtype=bool),
        )
        cfg = CacheConfig(size=1024, block_size=16, assoc=2)
        perf.reset()
        a = cached_simulate(tr, 2, cfg)
        b = cached_simulate(tr, 2, cfg)
        assert a is b
        assert perf.get("sim_cache.hit") == 1.0
        # A different geometry is a different entry.
        c = cached_simulate(tr, 2, CacheConfig(size=1024, block_size=32, assoc=2))
        assert c is not a


# ---------------------------------------------------------------------------
# interpreter fast path
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "wl", SIMULATION_WORKLOADS[:2], ids=[w.name for w in SIMULATION_WORKLOADS[:2]]
)
def test_interpreter_fast_path_bit_identical(wl, monkeypatch):
    """REPRO_INTERP_FAST=0 (pure generator evaluation) and the default
    fast path must produce identical traces and counters."""
    from repro.lang import compile_source

    checked = compile_source(wl.source)
    layout = DataLayout(checked, None, block_size=128, nprocs=4)
    monkeypatch.setenv("REPRO_INTERP_FAST", "0")
    slow = run_program(checked, layout, 4)
    monkeypatch.setenv("REPRO_INTERP_FAST", "1")
    fast = run_program(checked, layout, 4)
    assert np.array_equal(slow.trace.proc, fast.trace.proc)
    assert np.array_equal(slow.trace.addr, fast.trace.addr)
    assert np.array_equal(slow.trace.size, fast.trace.size)
    assert np.array_equal(slow.trace.is_write, fast.trace.is_write)
    assert slow.work == fast.work
    assert slow.private_refs == fast.private_refs
    assert slow.shared_refs == fast.shared_refs
    assert slow.output == fast.output
    assert slow.exit_value == fast.exit_value
    assert slow.heap_segments == fast.heap_segments


# ---------------------------------------------------------------------------
# parallel lab
# ---------------------------------------------------------------------------


class TestParallelLab:
    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "bogus")
        assert default_jobs() >= 1
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() >= 1

    def test_resolve_plan_labels(self):
        from repro.transform import ALL_KINDS

        wl = by_name("Pverify")
        pipe = Pipeline(wl.source)
        assert resolve_plan(pipe, wl, "N", 2) is None
        full = resolve_plan(pipe, wl, "C", 2)
        assert full is pipe.compiler_plan(2)
        kind = next(
            k for k in sorted(ALL_KINDS)
            if not full.restricted_to({k}).is_empty
        )
        sub = resolve_plan(pipe, wl, f"C[{kind}]", 2)
        assert not sub.is_empty
        for other in sorted(set(ALL_KINDS) - {kind}):
            assert sub.restricted_to({other}).is_empty
        with pytest.raises(ValueError):
            resolve_plan(pipe, wl, "Z", 2)

    def test_sweep_points_versions(self):
        wl = by_name("Pverify")
        pts = sweep_points([wl], (1, 2))
        assert ("Pverify", "N", 1) in pts
        assert all(v in ("N", "C", "P") for _, v, _ in pts)

    def test_prefetch_matches_serial(self, monkeypatch):
        """A prefetched lab and a serial lab must produce identical
        simulation results for the same points."""
        monkeypatch.setenv("REPRO_JOBS", "2")
        wl = by_name("Pverify")
        points = [(wl.name, "N", 2), (wl.name, "C", 2)]
        par = WorkloadLab()
        par.prefetch(points)
        ser = WorkloadLab(jobs=1)
        for name, version, nprocs in points:
            a = par.run(wl, version, nprocs)
            b = ser.run(wl, version, nprocs)
            assert np.array_equal(a.run.trace.addr, b.run.trace.addr)
            assert a.simulate(128).misses == b.simulate(128).misses
