"""End-to-end pipeline integration tests: analysis → plan → layout →
trace → simulation, on the fixture programs."""

from repro.harness import Pipeline
from repro.sim import top_fs_structures

from conftest import BLOCKED_SRC, COUNTER_SRC, HEAP_SRC


class TestPipeline:
    def test_plan_cached(self):
        pipe = Pipeline(COUNTER_SRC)
        assert pipe.compiler_plan(4) is pipe.compiler_plan(4)
        assert pipe.analysis(4) is pipe.analysis(4)
        assert pipe.compiler_plan(4) is not pipe.compiler_plan(8)

    def test_version_runs(self):
        pipe = Pipeline(COUNTER_SRC)
        vn = pipe.run_unoptimized(4)
        vc = pipe.run_compiler(4)
        assert vn.version == "N" and vc.version == "C"
        assert vn.run.output == vc.run.output

    def test_counter_fs_eliminated(self):
        pipe = Pipeline(COUNTER_SRC)
        sn = pipe.run_unoptimized(8).simulate(128)
        sc = pipe.run_compiler(8).simulate(128)
        assert sn.misses.false_sharing > 200
        assert sc.misses.false_sharing < sn.misses.false_sharing * 0.1

    def test_heap_fs_eliminated_via_indirection(self):
        pipe = Pipeline(HEAP_SRC)
        plan = pipe.compiler_plan(8)
        assert plan.indirections
        sn = pipe.run_unoptimized(8).simulate(128)
        sc = pipe.run_compiler(8).simulate(128)
        assert sc.misses.false_sharing < sn.misses.false_sharing * 0.5

    def test_blocked_program_boundary_fs(self):
        pipe = Pipeline(BLOCKED_SRC)
        sn = pipe.run_unoptimized(8).simulate(128)
        sc = pipe.run_compiler(8).simulate(128)
        assert sc.misses.false_sharing <= sn.misses.false_sharing

    def test_attribution_finds_culprit(self):
        # at 32-byte blocks the counter array spans its own blocks
        pipe = Pipeline(COUNTER_SRC)
        vn = pipe.run_unoptimized(8)
        sn = vn.simulate(32)
        top = top_fs_structures(sn, vn.regions(), 2)
        assert top[0].name in ("counter", "sums", "biglock")

    def test_fs_grows_with_block_size(self):
        # monotone while the hot data still spans multiple blocks
        pipe = Pipeline(COUNTER_SRC)
        vn = pipe.run_unoptimized(8)
        fs = [vn.simulate(bs).misses.false_sharing for bs in (8, 16, 64)]
        assert fs[0] <= fs[1] <= fs[2]

    def test_timing_monotone_sanity(self):
        from repro.machine import KSR2Config

        pipe = Pipeline(COUNTER_SRC)
        t1 = pipe.run_unoptimized(1).timing(KSR2Config(cpi=4.0))
        t4 = pipe.run_unoptimized(4).timing(KSR2Config(cpi=4.0))
        # with 4x the total work spread over 4 procs plus coherence,
        # cycles at P=4 are below the serial time of the same total work
        assert t4.cycles < t1.cycles * 4
