"""Cross-cutting property-based tests: generated programs round-trip
through the frontend; generated traces keep the simulator's invariants;
layout transformations never change program semantics."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import analyze_program
from repro.lang import compile_source, parse, to_source
from repro.layout import DataLayout
from repro.runtime import run_program
from repro.runtime.trace import Trace
from repro.sim import CacheConfig, simulate_trace
from repro.transform import decide_transformations

# ---------------------------------------------------------------------------
# Generated expression round-trips
# ---------------------------------------------------------------------------

_names = st.sampled_from(["x", "y", "z"])


def _exprs(depth: int):
    if depth == 0:
        return st.one_of(
            st.integers(0, 99).map(str),
            _names,
        )
    sub = _exprs(depth - 1)
    return st.one_of(
        sub,
        st.tuples(sub, st.sampled_from(["+", "-", "*", "/", "%"]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, st.sampled_from(["<", "==", ">="]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
    )


class TestFrontendProperties:
    @settings(max_examples=60, deadline=None)
    @given(_exprs(3))
    def test_generated_programs_roundtrip(self, expr):
        src = (
            "int x; int y; int z;\n"
            "int main()\n{\n"
            f"    int r;\n    r = {expr};\n    print(r);\n    return 0;\n}}\n"
        )
        once = to_source(parse(src))
        assert to_source(parse(once)) == once

    @settings(max_examples=30, deadline=None)
    @given(_exprs(2), st.integers(1, 9))
    def test_generated_programs_evaluate_consistently(self, expr, xval):
        # guard against division by zero by offsetting variables
        src = (
            "int main()\n{\n"
            f"    int x; int y; int z; int r;\n"
            f"    x = {xval}; y = {xval + 1}; z = {xval + 2};\n"
            f"    r = {expr} + 1;\n    print(r);\n    return 0;\n}}\n"
        )
        try:
            checked = compile_source(src)
        except Exception:
            return  # type errors in generated comparisons are fine to skip
        from repro.errors import RuntimeFault

        try:
            r1 = run_program(checked, DataLayout(checked, nprocs=1), 1)
            r2 = run_program(checked, DataLayout(checked, nprocs=1), 1)
        except RuntimeFault:
            return  # division by zero in a generated expression
        assert r1.output == r2.output


# ---------------------------------------------------------------------------
# Simulator invariants over random traces
# ---------------------------------------------------------------------------

events = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 255).map(lambda x: x * 4),
        st.sampled_from([4, 8]),
        st.booleans(),
    ),
    min_size=1,
    max_size=150,
)


def _trace(evts):
    proc, addr, size, w = zip(*evts)
    return Trace(
        proc=np.array(proc, dtype=np.int32),
        addr=np.array(addr, dtype=np.int64),
        size=np.array(size, dtype=np.int32),
        is_write=np.array(w, dtype=bool),
    )


class TestSimulatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(events, st.sampled_from([16, 64, 128]))
    def test_single_processor_has_no_sharing_misses(self, evts, block):
        solo = [(0, a, s, w) for (_p, a, s, w) in evts]
        res = simulate_trace(
            _trace(solo), 1, CacheConfig(size=2048, block_size=block, assoc=2)
        )
        assert res.misses.true_sharing == 0
        assert res.misses.false_sharing == 0

    @settings(max_examples=40, deadline=None)
    @given(events)
    def test_infinite_cache_has_no_replacements(self, evts):
        res = simulate_trace(
            _trace(evts),
            4,
            CacheConfig(size=1 << 20, block_size=64, assoc=1 << 14 - 6),
        )
        assert res.misses.replace == 0

    @settings(max_examples=40, deadline=None)
    @given(events, st.sampled_from([32, 128]))
    def test_miss_conservation(self, evts, block):
        res = simulate_trace(
            _trace(evts), 4, CacheConfig(size=4096, block_size=block, assoc=2)
        )
        m = res.misses
        assert m.total == m.cold + m.replace + m.true_sharing + m.false_sharing
        assert m.cold >= 1  # at least the first reference misses


# ---------------------------------------------------------------------------
# Layout transformations preserve semantics
# ---------------------------------------------------------------------------

_PROGRAM = """
lock_t l;
int tally[32];
int acc;

void w(int pid)
{{
    int i;
    for (i = pid; i < 32; i += nprocs()) {{
        tally[i] += i + {salt};
    }}
    barrier();
    lock(&l);
    acc = acc + tally[pid];
    unlock(&l);
}}

int main()
{{
    int p;
    acc = 0;
    for (p = 0; p < nprocs(); p++) {{ create(w, p); }}
    wait_for_end();
    print(acc);
    return 0;
}}
"""


class TestSemanticPreservation:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        salt=st.integers(0, 50),
        nprocs=st.integers(2, 8),
        block=st.sampled_from([32, 128]),
    )
    def test_any_plan_preserves_output(self, salt, nprocs, block):
        checked = compile_source(_PROGRAM.format(salt=salt))
        plan = decide_transformations(
            analyze_program(checked, nprocs), block_size=block
        )
        base = run_program(
            checked, DataLayout(checked, nprocs=nprocs, block_size=block), nprocs
        )
        opt = run_program(
            checked,
            DataLayout(checked, plan, nprocs=nprocs, block_size=block),
            nprocs,
        )
        assert base.output == opt.output
