"""Regression tests for worker-failure isolation in the parallel
harness: one grid point blowing up (bad program, unknown version,
unknown workload) must never cost the other points their results."""

from __future__ import annotations

import pytest

from repro.errors import CheckError
from repro.harness.parallel import map_tasks, run_points
from repro.lang import compile_source
from repro.verify.fuzz import check_seed

from conftest import COUNTER_SRC

#: Rejected by the checker (global initializers are unsupported) — the
#: shape of failure a fuzz-generated program produces mid-grid.
BAD_SRC = "int x = 1;\nint main() { return 0; }\n"


def _compile_names(src: str) -> list[str]:
    """Picklable worker: compile and report the global names."""
    checked = compile_source(src)
    return [g.name for g in checked.program.globals]


def test_bad_source_raises_check_error_directly():
    with pytest.raises(CheckError):
        compile_source(BAD_SRC)


@pytest.mark.parametrize("jobs", [1, 2])
def test_map_tasks_one_check_error_keeps_siblings(jobs):
    argslist = [(COUNTER_SRC,), (BAD_SRC,), (COUNTER_SRC,)]
    failures: dict[int, str] = {}
    out = map_tasks(_compile_names, argslist, jobs=jobs, failures=failures)
    assert sorted(out) == [0, 2]
    assert "counter" in out[0] and "counter" in out[2]
    assert list(failures) == [1]
    assert failures[1].startswith("CheckError:")


def test_map_tasks_without_failure_dict_still_returns_siblings():
    out = map_tasks(_compile_names, [(COUNTER_SRC,), (BAD_SRC,)], jobs=1)
    assert sorted(out) == [0]


def test_map_tasks_all_good(monkeypatch):
    failures: dict[int, str] = {}
    out = map_tasks(
        _compile_names, [(COUNTER_SRC,)] * 3, jobs=2, failures=failures
    )
    assert sorted(out) == [0, 1, 2]
    assert not failures


@pytest.mark.parametrize(
    "bad_point, expect_kind",
    [
        (("Pverify", "ZZZ", 2), "ValueError"),
        (("NoSuchWorkload", "N", 2), None),
    ],
)
def test_run_points_one_bad_point_keeps_the_grid(bad_point, expect_kind):
    good = ("Pverify", "N", 2)
    failures: dict[tuple, str] = {}
    out = run_points([good, bad_point], 128, jobs=2, failures=failures)
    assert good in out
    assert len(out[good].trace) > 0
    assert bad_point not in out
    assert list(failures) == [bad_point]
    if expect_kind:
        assert failures[bad_point].startswith(expect_kind)


def test_check_seed_is_parallel_safe():
    """The fuzzer's per-seed worker survives map_tasks fan-out: results
    come back for every seed even when one seed's program misbehaves."""
    failures: dict[int, str] = {}
    out = map_tasks(check_seed, [(s, 2) for s in range(4)], jobs=2,
                    failures=failures)
    assert sorted(out) == [0, 1, 2, 3]
    assert not failures
    for nplans, msgs in out.values():
        assert msgs == []
        assert nplans >= 1
