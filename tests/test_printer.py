"""Printer tests: formatting and parse→print→parse stability."""

from repro.lang import compile_source, parse, to_source
from repro.lang.printer import format_decl, format_expr
from repro.lang.parser import parse_expression
from repro.lang import ctypes as T

from conftest import BLOCKED_SRC, COUNTER_SRC, HEAP_SRC


class TestFormatting:
    def test_decl_forms(self):
        assert format_decl("x", T.INT) == "int x"
        assert format_decl("p", T.PointerType(T.DOUBLE)) == "double *p"
        assert format_decl("a", T.ArrayType(T.INT, (4, 8))) == "int a[4][8]"
        assert (
            format_decl("q", T.ArrayType(T.PointerType(T.INT), (3,)))
            == "int *q[3]"
        )

    def test_expr_parenthesization(self):
        assert format_expr(parse_expression("(a + b) * c")) == "(a + b) * c"
        assert format_expr(parse_expression("a + b * c")) == "a + b * c"
        assert format_expr(parse_expression("-(a + b)")) == "-(a + b)"

    def test_float_literal_keeps_point(self):
        assert "." in format_expr(parse_expression("2.0"))


class TestRoundTrip:
    def _stable(self, src: str):
        once = to_source(parse(src))
        twice = to_source(parse(once))
        assert once == twice
        # and the re-parsed program still checks
        compile_source(once)

    def test_counter_program(self):
        self._stable(COUNTER_SRC)

    def test_heap_program(self):
        self._stable(HEAP_SRC)

    def test_blocked_program(self):
        self._stable(BLOCKED_SRC)

    def test_workload_sources(self):
        from repro.workloads import ALL_WORKLOADS

        for wl in ALL_WORKLOADS:
            self._stable(wl.source)
