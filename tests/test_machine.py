"""KSR2 timing model and speedup machinery tests."""

from repro.lang import compile_source
from repro.layout import DataLayout
from repro.machine import (
    KSR2Config,
    SpeedupCurve,
    base_latency,
    build_curve,
    improvement_while_scaling,
    time_run,
)
from repro.runtime import run_program

from conftest import COUNTER_SRC


class TestLatencyModel:
    def test_local_ring(self):
        cfg = KSR2Config()
        assert base_latency(1, cfg) == cfg.local_latency
        assert base_latency(32, cfg) == cfg.local_latency

    def test_cross_ring_mix(self):
        cfg = KSR2Config()
        lat48 = base_latency(48, cfg)
        assert cfg.local_latency < lat48 < cfg.remote_latency
        assert base_latency(56, cfg) > lat48

    def test_time_run_components(self):
        checked = compile_source(COUNTER_SRC)
        run = run_program(checked, DataLayout(checked, nprocs=4), 4)
        t = time_run(run, KSR2Config(cpi=2.0))
        assert t.cycles > 0
        assert t.cycles == t.serial_cycles + t.parallel_cycles
        assert 0.0 <= t.utilization < 1.0
        assert t.effective_latency >= t.base_latency

    def test_contention_increases_latency(self):
        checked = compile_source(COUNTER_SRC)
        r8 = run_program(checked, DataLayout(checked, nprocs=8), 8)
        cheap = time_run(r8, KSR2Config(cpi=2.0, occupancy=1.0))
        costly = time_run(r8, KSR2Config(cpi=2.0, occupancy=30.0))
        assert costly.effective_latency > cheap.effective_latency


class TestSpeedupCurves:
    def _runner(self, checked):
        def run_at(nprocs):
            return run_program(
                checked, DataLayout(checked, nprocs=nprocs), nprocs
            )
        return run_at

    def test_normalized_to_uniprocessor(self):
        checked = compile_source(COUNTER_SRC)
        curve, base = build_curve(
            "N", self._runner(checked), (1, 2, 4), cfg=KSR2Config(cpi=4.0)
        )
        assert curve.points[1] == 1.0
        assert base > 0

    def test_external_baseline(self):
        checked = compile_source(COUNTER_SRC)
        _, base = build_curve("N", self._runner(checked), (1, 2),
                              cfg=KSR2Config(cpi=4.0))
        curve2, base2 = build_curve(
            "C", self._runner(checked), (1, 2),
            baseline_cycles=base, cfg=KSR2Config(cpi=4.0),
        )
        assert base2 == base

    def test_max_and_scaled_range(self):
        c = SpeedupCurve("x", points={1: 1.0, 2: 1.8, 4: 2.5, 8: 2.1})
        assert c.max_speedup == 2.5 and c.max_at == 4
        assert c.scaled_range() == [1, 2, 4]

    def test_improvement_while_scaling(self):
        from repro.machine import TimingResult

        def t(cycles):
            return TimingResult(
                nprocs=1, cycles=cycles, serial_cycles=0.0,
                parallel_cycles=cycles, utilization=0.0,
                effective_latency=175.0, base_latency=175.0,
                transactions=0, misses_per_proc={},
            )

        unopt = SpeedupCurve("N", points={1: 1.0, 2: 2.0, 4: 1.5},
                             timings={1: t(100), 2: t(50), 4: t(66)})
        opt = SpeedupCurve("C", points={1: 1.0, 2: 2.2, 4: 3.0},
                           timings={1: t(100), 2: t(45), 4: t(33)})
        imp = improvement_while_scaling(unopt, opt)
        assert set(imp) == {1, 2}  # the range where N still scales
        assert imp[2] == 1.0 - 45 / 50
