"""Machine-model registry and protocol plumbing tests: the MESI
protocol core, the geometry registry, the native-kernel protocol
pre-check, and the simulation memo's protocol key."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError, SimulationError
from repro.machine import (
    DEFAULT_MACHINE,
    MACHINES,
    MachineModel,
    active_machine,
    get_machine,
    resolve_machine,
)
from repro.machine.models import MACHINE_ENV
from repro.runtime.trace import Trace
from repro.sim import CacheConfig, CoherenceSim, simulate_trace
from repro.sim.kernel import KERNEL_ENV, NATIVE, PYTHON, load_kernel
from repro.sim.engine import resolve_kernel


def make_trace(events):
    proc, addr, size, w = zip(*events)
    return Trace(
        proc=np.array(proc, dtype=np.int32),
        addr=np.array(addr, dtype=np.int64),
        size=np.array(size, dtype=np.int32),
        is_write=np.array(w, dtype=bool),
    )


def sim(events, protocol="msi", block=64, nprocs=4):
    cfg = CacheConfig(
        size=4 * 1024, block_size=block, assoc=2, protocol=protocol
    )
    return simulate_trace(make_trace(events), nprocs, cfg)


# ---------------------------------------------------------------------------
# MESI protocol semantics
# ---------------------------------------------------------------------------


class TestMesi:
    def test_silent_upgrade_from_exclusive(self):
        # read miss installs E; the following write upgrades silently —
        # no invalidation broadcast, no upgrade transaction
        events = [(0, 0, 4, False), (0, 0, 4, True)]
        r = sim(events, protocol="mesi")
        assert r.upgrades == 0
        assert r.invalidations == 0
        # under MSI the same sequence pays an upgrade
        r = sim(events, protocol="msi")
        assert r.upgrades == 1

    def test_exclusive_demotes_clean_on_remote_read(self):
        # p0 installs E; p1's read demotes it to S without a writeback
        r = sim([(0, 0, 4, False), (1, 0, 4, False)], protocol="mesi")
        assert r.writebacks == 0
        # a subsequent write by p0 is now a shared upgrade, not silent
        r = sim(
            [(0, 0, 4, False), (1, 0, 4, False), (0, 0, 4, True)],
            protocol="mesi",
        )
        assert r.upgrades == 1

    def test_modified_still_writes_back(self):
        # M→S on remote read costs a writeback under both protocols
        events = [(0, 0, 4, True), (1, 0, 4, False)]
        assert sim(events, protocol="mesi").writebacks == 1
        assert sim(events, protocol="msi").writebacks == 1

    def test_no_exclusive_when_another_holder_exists(self):
        # p1 read-misses while p0 holds the block shared: no E install,
        # so p1's later write is a counted upgrade
        r = sim(
            [(0, 0, 4, False), (1, 0, 4, False), (1, 0, 4, True)],
            protocol="mesi",
        )
        assert r.upgrades == 1

    def test_miss_classification_protocol_invariant(self):
        # E only changes which transitions cost bus transactions; the
        # cold/replace/true/false breakdown is identical
        events = []
        for i in range(6):
            events.append((0, 0, 4, True))
            events.append((1, 32, 4, True))
            events.append((0, 256 * i, 4, False))
        msi = sim(events, protocol="msi")
        mesi = sim(events, protocol="mesi")
        assert msi.misses.as_tuple() == mesi.misses.as_tuple()
        assert msi.fs_by_block == mesi.fs_by_block
        assert msi.fs_pair_by_block == mesi.fs_pair_by_block

    def test_mesi_rejects_word_invalidate(self):
        cfg = CacheConfig(
            size=1024, block_size=64, assoc=2, protocol="mesi"
        )
        with pytest.raises(SimulationError):
            CoherenceSim(2, cfg, word_invalidate=True)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SimulationError):
            CacheConfig(size=1024, block_size=64, assoc=2, protocol="moesi")


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_default_is_the_paper_machine(self, monkeypatch):
        monkeypatch.delenv(MACHINE_ENV, raising=False)
        m = active_machine()
        assert m.name == DEFAULT_MACHINE == "ksr2"
        # exactly the original hard-coded simulate_run geometry
        cfg = m.cache_config(16)
        assert (cfg.size, cfg.block_size, cfg.assoc, cfg.protocol) == (
            32 * 1024, 16, 4, "msi",
        )
        assert m.cache_config().block_size == 128

    def test_env_selects_machine(self, monkeypatch):
        monkeypatch.setenv(MACHINE_ENV, "modern64")
        assert active_machine().name == "modern64"
        assert active_machine().protocol == "mesi"

    def test_unknown_machine_is_one_line_error(self):
        with pytest.raises(ReproError) as e:
            get_machine("cray1")
        msg = str(e.value)
        assert "cray1" in msg
        for name in MACHINES:
            assert name in msg  # the message lists the choices

    def test_resolve_machine_forms(self, monkeypatch):
        monkeypatch.delenv(MACHINE_ENV, raising=False)
        model = MACHINES["numa2"]
        assert resolve_machine(model) is model
        assert resolve_machine("numa2") is model
        assert resolve_machine(None).name == "ksr2"

    def test_miss_latency_tiers(self):
        ksr2 = MACHINES["ksr2"]
        assert ksr2.miss_latency(16) == ksr2.local_latency
        assert ksr2.local_latency < ksr2.miss_latency(48) < ksr2.remote_latency
        numa2 = MACHINES["numa2"]
        # past the 8-core socket the far-memory tier blends in
        assert numa2.miss_latency(16) > numa2.local_latency
        flat = MACHINES["modern64"]
        assert flat.miss_latency(64) == flat.miss_latency(1)

    def test_to_dict_names_identity(self):
        d = MACHINES["modern64"].to_dict()
        assert d["name"] == "modern64"
        assert d["protocol"] == "mesi"
        assert d["line_size"] == 64


# ---------------------------------------------------------------------------
# simulate_run resolves the active machine
# ---------------------------------------------------------------------------


class TestSimulateRunMachine:
    def test_machine_threads_protocol(self, counter_checked, monkeypatch):
        from repro.layout import DataLayout
        from repro.runtime import run_program
        from repro.sim import simulate_run

        monkeypatch.delenv(MACHINE_ENV, raising=False)
        layout = DataLayout(counter_checked, None, nprocs=4)
        run = run_program(counter_checked, layout, 4)
        default = simulate_run(run, 64)
        ksr2 = simulate_run(run, 64, machine="ksr2")
        assert default.config.protocol == "msi"
        assert default.misses.as_tuple() == ksr2.misses.as_tuple()
        mesi = simulate_run(run, 64, machine="modern64")
        assert mesi.config.protocol == "mesi"
        assert mesi.config.assoc == 8
        # the FS classification is protocol-invariant (E only changes
        # which transitions cost bus transactions)
        assert mesi.misses.false_sharing == default.misses.false_sharing


# ---------------------------------------------------------------------------
# Native-kernel protocol pre-check
# ---------------------------------------------------------------------------


class TestKernelProtocolGate:
    def test_forced_native_non_msi_raises(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        with pytest.raises(SimulationError) as e:
            resolve_kernel(kernel=NATIVE, protocol="mesi")
        assert "MSI" in str(e.value)

    def test_env_native_non_msi_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "native")
        with pytest.raises(SimulationError):
            resolve_kernel(protocol="mesi")

    def test_native_msi_unaffected(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        # protocol="msi" never triggers the gate, whatever the resolution
        assert resolve_kernel(protocol="msi") in (NATIVE, PYTHON)

    @pytest.mark.skipif(
        load_kernel() is None,
        reason="native kernel unavailable (no compiler?)",
    )
    def test_auto_falls_back_to_python(self, monkeypatch):
        from repro import perf

        monkeypatch.delenv(KERNEL_ENV, raising=False)
        before = perf.snapshot().get("kernel.protocol_fallback", 0)
        assert resolve_kernel(protocol="mesi") == PYTHON
        after = perf.snapshot().get("kernel.protocol_fallback", 0)
        assert after == before + 1


# ---------------------------------------------------------------------------
# Simulation memo keys on the protocol
# ---------------------------------------------------------------------------


def test_simcache_keys_on_protocol():
    from repro.sim.simcache import cached_simulate

    trace = make_trace(
        [(0, 0, 4, False), (0, 0, 4, True), (1, 0, 4, False)]
    )
    msi = cached_simulate(
        trace, 2, CacheConfig(size=1024, block_size=64, assoc=2)
    )
    mesi = cached_simulate(
        trace, 2,
        CacheConfig(size=1024, block_size=64, assoc=2, protocol="mesi"),
    )
    assert msi.config.protocol == "msi"
    assert mesi.config.protocol == "mesi"
    # a memo collision would hand back the MSI transaction counts
    assert msi.upgrades == 1 and mesi.upgrades == 0
