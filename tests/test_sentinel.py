"""The regression sentinel: rolling baselines and the alert rule."""

import json

import pytest

from repro.obs.query import Query
from repro.obs.sentinel import (
    Alert,
    SentinelConfig,
    check_bench_trajectory,
    check_records,
    check_store,
    evaluate,
    median,
    robust_sigma,
)
from repro.obs.store import RunStore

from test_store import make_record


KEY = ("Maxflow/N", "natural", 12, 128, "python")


def history(values, metric="fs", **kw):
    """A clean per-key history: one record per value, ts strictly
    increasing with the list position."""
    recs = []
    for i, v in enumerate(values):
        fs = v if metric == "fs" else 400
        wall = v if metric == "wall" else 1.0
        ts = (f"2026-08-01T{(i // 3600) % 24:02d}:"
              f"{(i // 60) % 60:02d}:{i % 60:02d}+00:00")
        recs.append(make_record(i, fs=fs, wall_seconds=wall,
                                kernel="python", ts=ts, **kw))
    return recs


class TestStatistics:
    def test_median(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_robust_sigma_matches_std_on_clean_data(self):
        # MAD * 1.4826 approximates the std of symmetric data
        xs = [10, 11, 12, 13, 14, 15, 16]
        assert robust_sigma(xs) == pytest.approx(2.9652)

    def test_robust_sigma_ignores_outliers(self):
        clean = [100.0] * 10
        poisoned = clean + [10_000.0]
        # one bad historical run barely moves the robust scale
        assert robust_sigma(poisoned) == 0.0


class TestRule:
    CFG = SentinelConfig()

    def test_flags_doubling(self):
        alert = evaluate(800.0, [400.0] * 10, "misses.false", KEY, self.CFG)
        assert alert is not None
        assert alert.ratio == pytest.approx(2.0)
        assert "REGRESSION" in alert.describe()
        assert "x2.00" in alert.describe()

    def test_quiet_on_identical_values(self):
        # deterministic counters: MAD = 0, value == median -> no alert
        assert evaluate(400.0, [400.0] * 10, "misses.false", KEY,
                        self.CFG) is None

    def test_quiet_within_relative_floor(self):
        # +10% on a stable counter stays under the 25% relative guard
        assert evaluate(440.0, [400.0] * 10, "misses.false", KEY,
                        self.CFG) is None

    def test_quiet_within_absolute_floor(self):
        # 3 -> 9 misses is x3 but under the 8-miss absolute floor
        assert evaluate(9.0, [3.0] * 10, "misses.false", KEY,
                        self.CFG) is None

    def test_noisy_metric_raises_the_bar(self):
        noisy = [1.0, 1.4, 0.8, 1.2, 1.1, 0.9, 1.3, 1.0]
        med = median(noisy)
        sigma = robust_sigma(noisy)
        value = med + 3.0 * sigma  # inside the z=4 band
        assert evaluate(value, noisy, "wall_seconds", KEY, self.CFG) is None
        assert evaluate(med + 6.0 * sigma, noisy, "wall_seconds", KEY,
                        self.CFG) is not None

    def test_improvements_never_alert(self):
        assert evaluate(10.0, [400.0] * 10, "misses.false", KEY,
                        self.CFG) is None

    def test_min_samples_gate(self):
        cfg = SentinelConfig(min_samples=4)
        assert evaluate(800.0, [400.0] * 3, "misses.false", KEY, cfg) is None
        assert evaluate(800.0, [400.0] * 4, "misses.false", KEY,
                        cfg) is not None


class TestRecords:
    def test_quiet_on_clean_history(self):
        report = check_records(history([400] * 12))
        assert report.ok
        assert report.checked >= 1
        assert report.alerts == []

    def test_flags_injected_regression(self):
        """The acceptance scenario: a doctored record with 2x the
        fs-misses of an otherwise clean history."""
        report = check_records(history([400] * 12 + [800]))
        assert not report.ok
        (alert,) = [a for a in report.alerts if a.metric == "misses.false"]
        assert alert.value == 800
        assert alert.median == 400

    def test_separate_baselines_per_key(self):
        # one workload regresses; the other, with different numbers,
        # stays quiet — keys do not bleed into each other
        a = history([400] * 10 + [800])
        b = history([50] * 10, workload="Water/C")
        report = check_records(a + b)
        assert len(report.alerts) == 1
        assert report.alerts[0].key[0] == "Maxflow/N"

    def test_rolling_window_forgets_old_levels(self):
        # the metric stepped down long ago; the window only sees the
        # new level, so a return to the old level *is* a regression
        cfg = SentinelConfig(window=10)
        report = check_records(history([800] * 20 + [400] * 15 + [800]), cfg)
        assert len(report.alerts) == 1

    def test_untracked_until_enough_history(self):
        report = check_records(history([400, 800]))
        assert report.ok
        assert report.untracked == 1
        assert "untracked" in report.describe()

    def test_wall_time_watched_too(self):
        recs = history([1.0] * 12 + [5.0], metric="wall")
        report = check_records(recs)
        assert any(a.metric == "wall_seconds" for a in report.alerts)


class TestStore:
    def test_check_store_end_to_end(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.ingest_records(history([400] * 12 + [801]))
        report = check_store(store)
        assert len(report.alerts) == 1
        # a filter that excludes the key silences it
        quiet = check_store(
            store, query=Query.build(where=["workload=Water/C"])
        )
        assert quiet.ok and quiet.checked == 0


class TestBenchTrajectory:
    def write(self, tmp_path, points):
        p = tmp_path / "BENCH_engine.json"
        p.write_text(json.dumps(points))
        return p

    def test_flags_slowdown(self, tmp_path):
        points = [
            {"bench": "grid_warm", "python_seconds": 10.0 + i * 0.01,
             "native_seconds": 1.0}
            for i in range(8)
        ] + [{"bench": "grid_warm", "python_seconds": 20.0,
              "native_seconds": 1.0}]
        report = check_bench_trajectory(
            self.write(tmp_path, points),
            ("python_seconds", "native_seconds"),
        )
        assert len(report.alerts) == 1
        assert report.alerts[0].metric == "python_seconds"

    def test_quiet_on_stable_trajectory(self, tmp_path):
        points = [
            {"bench": "grid_warm", "python_seconds": 10.0 + i * 0.01}
            for i in range(8)
        ]
        report = check_bench_trajectory(
            self.write(tmp_path, points), ("python_seconds",)
        )
        assert report.ok and report.checked == 1

    def test_missing_or_corrupt_file_is_untracked(self, tmp_path):
        report = check_bench_trajectory(
            tmp_path / "nope.json", ("python_seconds",)
        )
        assert report.ok and report.untracked == 1
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert check_bench_trajectory(bad, ("python_seconds",)).ok

    def test_fatal_only_with_env_optin(self, monkeypatch):
        from repro.obs.sentinel import bench_sentinel_fatal

        monkeypatch.delenv("REPRO_BENCH_SENTINEL", raising=False)
        assert not bench_sentinel_fatal()
        monkeypatch.setenv("REPRO_BENCH_SENTINEL", "1")
        assert bench_sentinel_fatal()


class TestAlert:
    def test_describe_names_key_fields(self):
        a = Alert(key=KEY, metric="misses.false", value=800, median=400,
                  sigma=0.0, threshold=501.25, samples=12)
        text = a.describe()
        assert "workload=Maxflow/N" in text
        assert "block_size=128" in text
