"""Search strategies, evaluator bookkeeping, objective, Pareto front.

The strategies are exercised against a synthetic space with a
hand-written additive objective — no interpreter, no simulator — so the
tests pin down the *search* contracts: exhaustive is ground truth,
greedy and beam reach the same optimum on a separable objective while
evaluating strictly fewer candidates, budgets bar new evaluations, and
duplicate plans never re-score.
"""

import pytest

from repro.transform.plan import PadAlign, TransformPlan
from repro.tune.objective import (
    METRICS,
    Objective,
    ParetoFront,
    PlanScore,
    dominates,
)
from repro.tune.search import (
    BudgetExhausted,
    Evaluator,
    beam_search,
    exhaustive_search,
    greedy_search,
    run_search,
)
from repro.tune.space import PlanAction, PlanSpace, StructureChoices

#: (base, per_element) -> false-sharing misses removed by that pad.
GAINS = {
    ("a", False): 10,
    ("a", True): 40,
    ("b", False): 25,
    ("b", True): 25,  # same gain through a *different* plan
    ("c", False): 5,
}


def _pad_action(base: str, per_element: bool) -> PlanAction:
    return PlanAction(
        base,
        "pad_align",
        f"pad {base}",
        pads=(PadAlign(base, per_element=per_element),),
    )


def _synth_space() -> PlanSpace:
    mk = lambda base, weight, *variants: StructureChoices(
        base,
        weight,
        (PlanAction(base, "none", "leave"),)
        + tuple(_pad_action(base, pe) for pe in variants),
    )
    return PlanSpace(
        nprocs=4,
        block_size=128,
        structures=[
            mk("a", 100, False, True),
            mk("b", 50, False, True),
            mk("c", 10, False),
        ],
    )


def _score_of(plan: TransformPlan) -> PlanScore:
    gain = sum(GAINS[(p.base, p.per_element)] for p in plan.pads)
    fs = 100 - gain
    return PlanScore(
        fs_misses=fs,
        total_misses=fs + 50,
        cycles=10_000.0 + 100.0 * fs + 10.0 * len(plan.pads),
        mem_bytes=1000 + 128 * len(plan.pads),
        mem_overhead=128 * len(plan.pads),
    )


def _scorer(calls=None):
    def score_many(plans):
        if calls is not None:
            calls.append(len(plans))
        return [_score_of(p) for p in plans]

    return score_many


def _evaluator(budget=None) -> Evaluator:
    return Evaluator(
        space=_synth_space(), score_many=_scorer(), budget=budget
    )


def _brute_best_key(objective: Objective) -> tuple:
    space = _synth_space()
    return min(
        objective.key(_score_of(space.compose(v)))
        for v in space.choice_vectors()
    )


class TestEvaluator:
    def test_dedup_same_plan_scored_once(self):
        ev = _evaluator()
        # b's two pad variants differ, but evaluating one vector twice
        # must hit the memo
        got1 = ev.evaluate((1, 0, 0))
        got2 = ev.evaluate((1, 0, 0))
        assert got1 is got2
        assert ev.evaluations == 1
        assert ev.dedup_hits == 1

    def test_batch_dedups_within_itself(self):
        ev = _evaluator()
        out = ev.evaluate_batch([(1, 0, 0), (1, 0, 0), (2, 0, 0)])
        assert ev.evaluations == 2
        assert ev.dedup_hits == 1
        assert len(out) == 3  # memoized result returned per input

    def test_budget_bars_new_evaluations(self):
        ev = _evaluator(budget=2)
        ev.evaluate_batch([(0, 0, 0), (1, 0, 0)])
        with pytest.raises(BudgetExhausted):
            ev.evaluate((2, 0, 0))
        assert ev.evaluations == 2
        # memoized lookups still work after exhaustion
        assert ev.evaluate((1, 0, 0)) is not None

    def test_failed_scores_discarded_not_fatal(self):
        space = _synth_space()

        def flaky(plans):
            return [
                None if any(p.base == "c" for p in plan.pads)
                else _score_of(plan)
                for plan in plans
            ]

        ev = Evaluator(space=space, score_many=flaky)
        out = ev.evaluate_batch([(0, 0, 1), (1, 0, 0)])
        assert ev.failures == 1
        assert [e.choices for e in out] == [(1, 0, 0)]
        assert ev.evaluate((0, 0, 1)) is None  # memoized as failed

    def test_front_tracks_evaluations(self):
        ev = _evaluator()
        ev.evaluate_batch(list(ev.space.choice_vectors()))
        assert len(ev.front) >= 1
        best = ev.best()
        assert best is not None
        assert best.fingerprint in {
            e.fingerprint for e in ev.front.entries
        }


class TestStrategies:
    def test_exhaustive_covers_distinct_plans(self):
        ev = _evaluator()
        out = exhaustive_search(ev)
        space = _synth_space()
        distinct = len(
            {space.compose(v).fingerprint for v in space.choice_vectors()}
        )
        assert out.evaluations == distinct
        assert out.dedup_hits == space.size - distinct
        assert not out.budget_exhausted
        assert ev.objective.key(out.best.score) == _brute_best_key(
            ev.objective
        )

    def test_greedy_matches_exhaustive_with_fewer_evals(self):
        ex = exhaustive_search(_evaluator())
        ev = _evaluator()
        out = greedy_search(ev)
        assert out.evaluations < ex.evaluations
        assert ev.objective.key(out.best.score) == ev.objective.key(
            ex.best.score
        )

    def test_greedy_from_custom_start(self):
        ev = _evaluator()
        out = greedy_search(ev, start=(2, 2, 1))
        assert ev.objective.key(out.best.score) == _brute_best_key(
            ev.objective
        )

    def test_beam_matches_exhaustive_with_fewer_evals(self):
        ex = exhaustive_search(_evaluator())
        ev = _evaluator()
        out = beam_search(ev, width=2)
        assert out.evaluations < ex.evaluations
        assert ev.objective.key(out.best.score) == ev.objective.key(
            ex.best.score
        )

    def test_budget_exhaustion_reported_with_partial_best(self):
        ev = _evaluator(budget=4)
        out = exhaustive_search(ev)
        assert out.budget_exhausted
        assert out.evaluations == 4
        assert out.best is not None

    def test_run_search_dispatch(self):
        for strategy in ("exhaustive", "greedy", "beam"):
            out = run_search(_evaluator(), strategy)
            assert out.strategy == strategy
        with pytest.raises(ValueError):
            run_search(_evaluator(), "annealing")


class TestObjective:
    def test_parse_and_str_roundtrip(self):
        obj = Objective.parse(" fs , mem ")
        assert obj.order == ("fs", "mem")
        assert str(obj) == "fs,mem"

    def test_parse_rejects_unknown_and_empty(self):
        with pytest.raises(ValueError):
            Objective.parse("fs,latency")
        with pytest.raises(ValueError):
            Objective.parse("")

    def test_lexicographic_order(self):
        obj = Objective(order=("fs", "mem"))
        a = PlanScore(5, 60, 9000.0, 1000, 500)
        b = PlanScore(5, 50, 8000.0, 900, 400)
        c = PlanScore(4, 99, 99999.0, 9999, 9999)
        assert obj.better(b, a)  # fs ties, mem decides
        assert obj.better(c, b)  # fs dominates everything listed after
        assert not obj.better(a, a)

    def test_cycles_quantized_against_solver_noise(self):
        obj = Objective(order=("cycles",), cycles_rtol=1e-3)
        a = PlanScore(0, 0, 1_000_000.0, 0, 0)
        b = PlanScore(0, 0, 1_000_400.0, 0, 0)  # within 0.1%
        c = PlanScore(0, 0, 1_010_000.0, 0, 0)  # clearly worse
        # sub-tolerance differences move the key by at most one bucket
        assert abs(obj.key(a)[0] - obj.key(b)[0]) <= 1
        assert obj.better(a, c)
        assert obj.better(b, c)

    def test_cycles_key_monotone(self):
        obj = Objective(order=("cycles",), cycles_rtol=1e-3)
        values = [0.5, 1.0, 10.0, 999.0, 1e4, 2e5, 1e6, 3e8]
        keys = [
            obj.key(PlanScore(0, 0, v, 0, 0))[0] for v in values
        ]
        assert keys == sorted(keys)
        # distinct enough values never collapse into one bucket
        assert len(set(keys)) == len(keys)

    def test_metric_names_closed(self):
        s = PlanScore(1, 2, 3.0, 4, 5)
        for m in METRICS:
            s.metric(m)
        with pytest.raises(KeyError):
            s.metric("latency")


class TestParetoFront:
    S = staticmethod(lambda fs, cyc, mem: PlanScore(fs, fs, cyc, mem, mem))

    def test_dominated_entry_rejected(self):
        front = ParetoFront()
        assert front.add("A", self.S(10, 100.0, 50))
        assert not front.add("B", self.S(10, 100.0, 60))
        assert len(front) == 1

    def test_dominating_entry_evicts(self):
        front = ParetoFront()
        front.add("A", self.S(10, 100.0, 50))
        assert front.add("B", self.S(5, 90.0, 40))
        assert [e.fingerprint for e in front.entries] == ["B"]

    def test_tradeoffs_coexist(self):
        front = ParetoFront()
        front.add("fast", self.S(0, 100.0, 500))
        assert front.add("small", self.S(20, 300.0, 0))
        assert len(front) == 2

    def test_duplicate_fingerprint_and_equal_vector_rejected(self):
        front = ParetoFront()
        front.add("A", self.S(10, 100.0, 50))
        assert not front.add("A", self.S(0, 0.0, 0))
        assert not front.add("B", self.S(10, 100.0, 50))

    def test_sorted_by_objective(self):
        front = ParetoFront()
        front.add("fast", self.S(0, 100.0, 500))
        front.add("small", self.S(20, 300.0, 0))
        by_fs = front.sorted_by(Objective(order=("fs",)))
        by_mem = front.sorted_by(Objective(order=("mem",)))
        assert by_fs[0].fingerprint == "fast"
        assert by_mem[0].fingerprint == "small"

    def test_dominates_strictness(self):
        a = self.S(1, 10.0, 5)
        assert not dominates(a, a)
        assert dominates(self.S(1, 9.0, 5), a)
        assert not dominates(self.S(0, 11.0, 5), a)
