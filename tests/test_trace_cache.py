"""Persistent trace cache: chunked shards, streaming writer, the
``REPRO_TRACE_CACHE_MAX_MB`` LRU size budget, and the unified artifact
store underneath it (sharded layout, atomic flock'd publish, legacy
flat-layout adoption, racing concurrent writers).

The eviction policy under test: every *load* refreshes an entry's
recency (mtime), stores enforce the budget afterwards, oldest-unused
entries go first, and the entry just written is exempt — so the
most-recently-used survivors are exactly the entries a warm experiment
grid keeps re-reading.
"""

import logging
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.runtime import trace_cache as tc
from repro.runtime.trace import RunResult, Trace


def make_run(n, seed, *, nprocs=4):
    rng = np.random.default_rng(seed)
    trace = Trace(
        proc=rng.integers(0, nprocs, n).astype(np.int32),
        addr=(rng.integers(0, 1 << 20, n) * 4).astype(np.int64),
        size=np.full(n, 4, np.int32),
        is_write=(rng.random(n) < 0.3),
    )
    return RunResult(
        trace=trace, nprocs=nprocs, work={0: n}, private_refs={0: 11},
        shared_refs={0: n}, output=[str(seed)], exit_value=seed,
        heap_segments=[(0, 64, "h")],
    )


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "1")
    monkeypatch.delenv("REPRO_TRACE_CACHE_MAX_MB", raising=False)
    monkeypatch.delenv("REPRO_TRACE_SHARD_REFS", raising=False)
    return tmp_path


def key_for(i):
    return tc.run_key(f"src{i}", "plan", 4, 64, 4, 1000)


def assert_run_equal(got, want):
    np.testing.assert_array_equal(got.trace.proc, want.trace.proc)
    np.testing.assert_array_equal(got.trace.addr, want.trace.addr)
    np.testing.assert_array_equal(got.trace.size, want.trace.size)
    np.testing.assert_array_equal(got.trace.is_write, want.trace.is_write)
    assert got.private_refs == want.private_refs
    assert got.output == want.output
    assert got.exit_value == want.exit_value
    assert got.heap_segments == want.heap_segments


# ---------------------------------------------------------------------------
# chunked shards
# ---------------------------------------------------------------------------


def test_sharded_roundtrip(cache, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SHARD_REFS", "1000")
    run = make_run(3500, seed=1)
    assert tc.store_run(key_for(1), run)
    assert_run_equal(tc.load_run(key_for(1)), run)


def test_open_run_streams_shards(cache, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SHARD_REFS", "1000")
    run = make_run(3500, seed=2)
    tc.store_run(key_for(2), run)
    with tc.open_run(key_for(2)) as stored:
        assert stored.nchunks == 4
        assert len(stored.meta.trace) == 0  # counters only
        assert stored.meta.output == run.output
        chunks = list(stored.chunks())
    assert [len(c) for c in chunks] == [1000, 1000, 1000, 500]
    np.testing.assert_array_equal(
        np.concatenate([c.addr for c in chunks]), run.trace.addr
    )


def test_small_runs_stay_whole_column(cache, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SHARD_REFS", "1000")
    run = make_run(400, seed=3)
    tc.store_run(key_for(3), run)
    with tc.open_run(key_for(3)) as stored:
        assert stored.nchunks == 0
        chunks = list(stored.chunks())
    assert len(chunks) == 1 and len(chunks[0]) == 400
    assert_run_equal(tc.load_run(key_for(3)), run)


def test_shard_writer_streams(cache):
    """The writer used by the streaming pipeline: chunks in, one
    atomic entry out, no temp litter on abort."""
    run = make_run(2600, seed=4)
    w = tc.ShardWriter(key_for(4))
    assert w.active
    tr = run.trace
    for start in range(0, len(tr), 777):
        stop = min(start + 777, len(tr))
        w.add(Trace(
            proc=tr.proc[start:stop], addr=tr.addr[start:stop],
            size=tr.size[start:stop], is_write=tr.is_write[start:stop],
        ))
    assert w.finish(run)
    assert_run_equal(tc.load_run(key_for(4)), run)

    aborted = tc.ShardWriter(key_for(5))
    aborted.add(Trace(
        proc=tr.proc[:100], addr=tr.addr[:100],
        size=tr.size[:100], is_write=tr.is_write[:100],
    ))
    aborted.abort()
    assert tc.load_run(key_for(5)) is None
    assert not list(cache.rglob(".tmp-*")), "aborted writer left temp files"


def test_shard_writer_respects_min_refs(cache, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "5000")
    run = make_run(100, seed=6)
    w = tc.ShardWriter(key_for(6))
    w.add(run.trace)
    assert not w.finish(run)  # below the persistence floor
    assert tc.load_run(key_for(6)) is None


def test_corrupt_entry_dropped(cache):
    run = make_run(300, seed=7)
    tc.store_run(key_for(7), run)
    path = tc.entry_path(key_for(7))
    assert path.exists()
    path.write_bytes(b"not a zip file")
    assert tc.load_run(key_for(7)) is None
    assert not path.exists()  # dropped, not left to poison every run
    assert tc.open_run(key_for(7)) is None


def test_legacy_flat_entry_adopted(cache):
    """A warm pre-store cache (flat ``<key>.npz`` at the root) keeps
    its hits: the entry is adopted into the sharded store on first
    lookup and served from there afterwards."""
    run = make_run(300, seed=8)
    tc.store_run(key_for(8), run)
    sharded = tc.entry_path(key_for(8))
    legacy = cache / f"{key_for(8)}.npz"
    os.replace(sharded, legacy)  # demote to the pre-store layout
    tc.store().delete("trace", key_for(8))
    assert not sharded.exists()

    assert_run_equal(tc.load_run(key_for(8)), run)  # adopted on lookup
    assert sharded.exists()
    assert not legacy.exists()
    assert_run_equal(tc.load_run(key_for(8)), run)  # now store-served


# ---------------------------------------------------------------------------
# satellite: LRU size budget
# ---------------------------------------------------------------------------


def _entry_mb(cache, key):
    return tc.entry_path(key).stat().st_size / (1024 * 1024)


def _stored_names(cache):
    return {p.name for p in (cache / "shards").rglob("*.npz")}


def test_lru_eviction_preserves_mru(cache, monkeypatch):
    """Five entries, a budget that fits ~two: the surviving entries are
    the most recently *used* — entry 0 is old by store order but gets
    touched by a load, so it outlives untouched newer peers."""
    runs = [make_run(2000, seed=20 + i) for i in range(5)]
    keys = [key_for(20 + i) for i in range(5)]
    # store without a budget so nothing is evicted during setup
    for k, r in zip(keys, runs):
        assert tc.store_run(k, r)
        time.sleep(0.02)

    one = _entry_mb(cache, keys[0])
    monkeypatch.setenv("REPRO_TRACE_CACHE_MAX_MB", str(one * 2.5))

    time.sleep(0.02)
    assert tc.load_run(keys[0]) is not None  # touch: 0 is now MRU
    time.sleep(0.02)
    new_run, new_key = make_run(2000, seed=99), key_for(99)
    assert tc.store_run(new_key, new_run)

    survivors = _stored_names(cache)
    assert tc.entry_path(new_key).name in survivors, \
        "a store never evicts itself"
    assert tc.entry_path(keys[0]).name in survivors, \
        "touched entry must survive"
    assert tc.entry_path(keys[1]).name not in survivors, \
        "untouched LRU entry evicted"
    total = sum(
        p.stat().st_size for p in (cache / "shards").rglob("*.npz")
    )
    assert total <= one * 2.5 * 1024 * 1024 * 1.01


def test_eviction_logs_drops(cache, monkeypatch, caplog):
    for i in range(3):
        tc.store_run(key_for(40 + i), make_run(2000, seed=40 + i))
        time.sleep(0.02)
    monkeypatch.setenv(
        "REPRO_TRACE_CACHE_MAX_MB", str(_entry_mb(cache, key_for(40)) * 1.5)
    )
    with caplog.at_level(logging.INFO, logger="repro.artifacts"):
        tc.store_run(key_for(43), make_run(2000, seed=43))
    assert any("evicted" in r.message for r in caplog.records)


def test_no_budget_means_no_eviction(cache, monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_CACHE_MAX_MB", raising=False)
    for i in range(4):
        tc.store_run(key_for(60 + i), make_run(2000, seed=60 + i))
    assert len(_stored_names(cache)) == 4


def test_load_refreshes_mtime(cache):
    tc.store_run(key_for(70), make_run(2000, seed=70))
    path = tc.entry_path(key_for(70))
    old = path.stat().st_mtime - 3600
    os.utime(path, (old, old))
    assert tc.load_run(key_for(70)) is not None
    assert path.stat().st_mtime > old + 3000


# ---------------------------------------------------------------------------
# satellite: concurrent writers race safely through the artifact store
# ---------------------------------------------------------------------------


def _racing_store(cache_dir, key, n, seed, barrier):
    os.environ["REPRO_TRACE_CACHE"] = str(cache_dir)
    os.environ["REPRO_TRACE_CACHE_MIN"] = "1"
    from repro.runtime import trace_cache as worker_tc

    run = make_run(n, seed)
    barrier.wait(timeout=30)  # maximize overlap
    for _ in range(5):
        worker_tc.store_run(key, run)


def test_racing_writers_never_publish_partial_entries(cache):
    """Two processes repeatedly storing the *same key* concurrently:
    the flock'd atomic publish guarantees every post-race load sees a
    complete, validated entry (pre-store, interleaved partial files
    were possible).  Both writers produce identical payloads, so last
    writer wins losslessly."""
    key = key_for(90)
    run = make_run(3000, seed=90)
    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(3)
    procs = [
        ctx.Process(
            target=_racing_store, args=(cache, key, 3000, 90, barrier)
        )
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    barrier.wait(timeout=30)
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    got = tc.load_run(key)
    assert got is not None, "racing writers corrupted the entry"
    assert_run_equal(got, run)
    assert not list(cache.rglob(".tmp-*")), "race left temp litter"
