"""The differential-validation subsystem: oracle, progen, fuzz loop."""

from __future__ import annotations

import pytest

import repro.verify.fuzz as fuzz_mod
from repro.lang import compile_source
from repro.transform.plan import PadAlign, TransformPlan
from repro.verify import invariants, oracle, progen

from conftest import BLOCKED_SRC, COUNTER_SRC, HEAP_SRC

NPROCS = 4


# -- oracle ------------------------------------------------------------------


class TestOracle:
    @pytest.mark.parametrize("src", [COUNTER_SRC, HEAP_SRC, BLOCKED_SRC])
    def test_hand_written_kernels_agree_under_all_plans(self, src):
        checked = compile_source(src)
        verdicts, _run = oracle.check_program(checked, NPROCS)
        assert verdicts, "no candidate plans synthesized"
        bad = [str(v) for v in verdicts if not v.ok]
        assert not bad, "\n".join(bad)

    def test_candidate_plans_cover_every_transform_kind(self):
        checked = compile_source(HEAP_SRC)
        labels = {
            label for label, _ in oracle.candidate_plans(checked, NPROCS, 128)
        }
        assert {"C", "pad-all", "recpad-all", "indirect-all"} <= labels

    def test_snapshot_is_layout_independent(self, counter_checked):
        base, _ = oracle.observe(counter_checked, None, NPROCS)
        plan = TransformPlan(
            nprocs=NPROCS,
            pads=[PadAlign("counter", per_element=True)],
        )
        padded, _ = oracle.observe(counter_checked, plan, NPROCS)
        assert base.globals == padded.globals
        assert base.output == padded.output

    def test_snapshot_follows_indirected_fields(self, heap_checked):
        plans = oracle.candidate_plans(heap_checked, NPROCS, 128)
        indirect = dict(plans)["indirect-all"]
        base, _ = oracle.observe(heap_checked, None, NPROCS)
        moved, _ = oracle.observe(heap_checked, indirect, NPROCS)
        # 'done' is a plain global: present and equal in both snapshots
        assert base.globals["done[0]"] == 1
        assert moved.globals["done[0]"] == 1
        assert base.globals == moved.globals

    def test_diff_states_reports_bounded_mismatches(self):
        a = oracle.ObservedState(("1", "2"), 0, {f"g[{i}]": i for i in range(40)})
        b = oracle.ObservedState(("1", "9"), 1, {f"g[{i}]": -i for i in range(40)})
        diffs = oracle.diff_states(a, b)
        assert diffs
        assert len(diffs) <= oracle.MAX_MISMATCHES

    def test_verdict_renders_failure_details(self):
        v = oracle.Verdict(
            plan_label="pad-all", plan_desc="", nprocs=4, ok=False,
            mismatches=["g[0]: N=1 vs 2"],
        )
        s = str(v)
        assert "FAIL" in s and "pad-all" in s and "g[0]" in s


# -- progen ------------------------------------------------------------------


class TestProgen:
    def test_generation_is_deterministic(self):
        assert progen.render(progen.generate(7)) == progen.render(
            progen.generate(7)
        )
        assert progen.generate(7) == progen.generate(7)

    def test_distinct_seeds_differ(self):
        sources = {progen.render(progen.generate(s)) for s in range(10)}
        assert len(sources) > 5

    @pytest.mark.parametrize("seed", range(25))
    def test_generated_programs_compile(self, seed):
        compile_source(progen.render(progen.generate(seed)))

    def test_grammar_coverage_across_seeds(self):
        """The generator must exercise structs, heap pointers, locks,
        barriers and PDV loops somewhere in a modest seed range."""
        blob = "".join(progen.render(progen.generate(s)) for s in range(40))
        for construct in (
            "struct cell", "alloc(struct cell)", "lock(", "barrier();",
            "i = pid;", "nprocs()", "pid * chunk",
        ):
            assert construct in blob, f"no seed generated {construct!r}"

    def test_round_trip_through_full_stack(self):
        """compile -> interpret -> oracle -> simulate for a seed batch."""
        for seed in range(6):
            checked = compile_source(progen.render(progen.generate(seed)))
            verdicts, run = oracle.check_program(checked, NPROCS)
            assert all(v.ok for v in verdicts)
            assert not invariants.check_trace(
                run.trace, NPROCS, block_sizes=(4, 64)
            )

    def test_shrink_reaches_fixpoint_and_preserves_failure(self):
        spec = progen.generate(3)

        def fails(s: progen.ProgramSpec) -> bool:
            # pseudo-failure: any spec still touching the first target
            return any(op.target == spec.ops[0].target for op in s.ops)

        small = progen.shrink(spec, fails)
        assert fails(small)
        assert len(small.ops) <= len(spec.ops)
        # no candidate reduction may still fail (greedy fixpoint)
        assert all(not fails(c) for c in progen._candidates(small))

    def test_shrink_drops_unreferenced_globals(self):
        spec = progen.generate(3)
        small = progen.shrink(spec, lambda s: True)
        used = {op.target for op in small.ops} | {
            op.lock for op in small.ops if op.lock
        }
        assert all(g.name in used for g in small.globals)


# -- fuzz loop ---------------------------------------------------------------


class TestFuzz:
    def test_clean_stack_fuzzes_clean(self):
        report = fuzz_mod.fuzz(seed=0, count=10, nprocs=NPROCS)
        assert report.programs == 10
        assert report.plans >= 10
        assert report.ok, "\n".join(f.describe() for f in report.failures)
        assert "ok" in report.summary()

    def test_budget_stops_the_loop(self):
        report = fuzz_mod.fuzz(seed=0, budget=0.0, nprocs=NPROCS)
        assert report.programs == 0 and report.ok

    def test_broken_pad_align_is_caught_and_shrunk(self, monkeypatch):
        """The ISSUE acceptance case: a deliberately mis-sized pad&align
        layout must be caught by the oracle and shrunk to a minimal
        counterexample."""
        monkeypatch.setenv("REPRO_VERIFY_BREAK", "pad_align")
        report = fuzz_mod.fuzz(seed=0, count=3, nprocs=NPROCS)
        assert not report.ok
        failure = report.failures[0]
        assert failure.kind in ("oracle", "crash")
        assert failure.shrunk_to <= failure.shrunk_from
        # the minimized source still reproduces under the broken flag
        msgs, _ = fuzz_mod._spec_failures(
            progen.generate(failure.seed), NPROCS
        )
        assert msgs

    def test_save_failures_writes_counterexamples(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_BREAK", "pad_align")
        report = fuzz_mod.fuzz(seed=0, count=1, nprocs=NPROCS)
        assert not report.ok
        paths = fuzz_mod.save_failures(report, str(tmp_path))
        assert paths
        text = (tmp_path / f"counterexample-{report.failures[0].seed}.c").read_text()
        assert "fuzz failure" in text and "int main()" in text

    def test_break_flag_off_means_no_failures(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_BREAK", raising=False)
        report = fuzz_mod.fuzz(seed=0, count=2, nprocs=NPROCS)
        assert report.ok
