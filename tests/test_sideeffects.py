"""Side-effect analysis and pattern aggregation tests."""

from repro.analysis import Target, analyze_program
from repro.lang import compile_source
from repro.rsd import Point, Range
from repro.rsd.expr import PDV


WRAP = """
{decls}
void w(int pid)
{{
{body}
}}
int main()
{{
    int p;
{init}
    for (p = 0; p < nprocs(); p++) {{ create(w, p); }}
    wait_for_end();
    return 0;
}}
"""


def patterns(decls: str, body: str, init: str = "", nprocs: int = 8):
    src = WRAP.format(decls=decls, body=body, init=init)
    return analyze_program(compile_source(src), nprocs)


class TestTargets:
    def test_scalar_target(self):
        pa = patterns("int g;", "    g = pid;")
        pat = pa.patterns[Target("g")]
        assert pat.writes > 0

    def test_array_pdv_index(self):
        pa = patterns("int a[64];", "    a[pid] = 1;")
        pat = pa.patterns[Target("a")]
        assert pat.writes_pdv_disjoint
        (rsd, _w) = pat.write_descriptors[0]
        assert isinstance(rsd.elems[0], Point)
        assert rsd.elems[0].value.pdv_coeff == 1

    def test_struct_field_paths_distinct(self):
        pa = patterns(
            "struct c { int x; int y; }; struct c cells[32];",
            "    cells[pid].x = 1;\n    cells[pid].y = 2;",
        )
        assert Target("cells", ("x",)) in pa.patterns
        assert Target("cells", ("y",)) in pa.patterns

    def test_pointer_array_heap_field(self, heap_checked):
        pa = analyze_program(heap_checked, 8)
        tgt = Target("nodes", ("*", "count"))
        pat = pa.patterns[tgt]
        assert pat.record_field == ("node", "count")
        assert pat.writes_are_per_process

    def test_pointer_hop_emits_pointer_read(self, heap_checked):
        pa = analyze_program(heap_checked, 8)
        # the pointer array itself is read on every hop
        reads = [
            e for e in pa.side_effects.entries
            if e.target == Target("nodes") and not e.is_write
        ]
        assert reads

    def test_cyclic_partition_detected(self, heap_checked):
        pa = analyze_program(heap_checked, 8)
        pat = pa.patterns[Target("nodes", ("*", "count"))]
        (rsd, _) = pat.write_descriptors[0]
        assert isinstance(rsd.elems[0], Range)
        assert rsd.elems[0].stride == 8

    def test_blocked_partition_with_invariant_chunk(self, blocked_checked):
        pa = analyze_program(blocked_checked, 8)
        pat = pa.patterns[Target("data")]
        assert pat.writes_pdv_disjoint

    def test_lock_targets_flagged(self, counter_checked):
        pa = analyze_program(counter_checked, 8)
        pat = pa.patterns[Target("biglock")]
        assert pat.is_lock

    def test_alias_through_local_pointer(self):
        pa = patterns(
            "struct c { int x; int pad; }; struct c *items;",
            "    items[pid].x = 1;",
            init="    items = alloc_array(struct c, 64);",
        )
        tgt = Target("items", ("*", "x"))
        assert tgt in pa.patterns
        assert pa.patterns[tgt].writes_are_per_process


class TestPhasesAndProcs:
    def test_entries_carry_phases(self, counter_checked):
        pa = analyze_program(counter_checked, 8)
        pat = pa.patterns[Target("total")]
        assert set(pat.phases) == {1}

    def test_serial_init_excluded_from_parallel_weights(self, blocked_checked):
        pa = analyze_program(blocked_checked, 8)
        pat = pa.patterns[Target("data")]
        assert pat.serial_weight > 0  # main's init writes
        # but the parallel classification only counts worker accesses
        assert pat.write_pp > 0

    def test_single_writer_branch(self):
        pa = patterns(
            "int master_flag; int a[64];",
            "    if (pid == 0) { master_flag = 1; }\n    a[pid] = master_flag;",
        )
        pat = pa.patterns[Target("master_flag")]
        writers = set()
        for e in pat.entries:
            if e.is_write and e.phase >= 0:
                writers |= e.procs
        assert writers == {0}


class TestClassification:
    def test_shared_writes_classified(self):
        pa = patterns(
            "int g[128];",
            "    int i;\n    for (i = 0; i < 40; i++) { g[rnd(i) % 128] += 1; }",
        )
        pat = pa.patterns[Target("g")]
        assert pat.write_sh > 0 and pat.write_pp == 0

    def test_unit_stride_shared_reads_are_local(self):
        pa = patterns(
            "int src[64]; int out[64];",
            "    int i;\n    for (i = 0; i < 64; i++) { out[pid] += src[i]; }",
        )
        pat = pa.patterns[Target("src")]
        assert pat.read_sh_local > 0
        assert pat.read_sh_nonlocal == 0

    def test_pattern_shift_detection(self):
        pa = patterns(
            "int a[64];",
            "    int i;\n"
            "    a[pid] = 1;\n"
            "    barrier();\n"
            "    for (i = 0; i < 8; i++) { a[rnd(i + pid) % 64] += 1; }",
        )
        pat = pa.patterns[Target("a")]
        assert pat.pattern_shifts
