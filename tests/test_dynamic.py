"""Dynamic mitigation subsystem tests: the addressing overlay, the
phase-mark plumbing, the engine's honesty property (zero repairs ==
plain simulation, bit for bit), actual FS reduction with a verified
equivalence plan, and the `fs_pair_by_block` conservation law under
both schedulers (the signal the engine folds per phase)."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import COUNTER_SRC, HEAP_SRC
from repro.dynamic import (
    DYN_BASE,
    AddressOverlay,
    mitigate,
)
from repro.errors import ReproError
from repro.lang import compile_source
from repro.layout import DataLayout
from repro.runtime import run_program, trace_cache
from repro.runtime.stealing import RR, SchedConfig
from repro.sim import simulate_run
from repro.verify.oracle import diff_states, observe

NPROCS = 4

#: Four processors hammering adjacent elements of one hot array across
#: six barrier-delimited rounds: a repair at the first boundary pays
#: off for five more phases.
HOT_SRC = """
int hot[8];
int out[64];

void worker(int pid)
{
    int r;
    int i;
    for (r = 0; r < 6; r++) {
        for (i = 0; i < 30; i++) {
            hot[pid] = hot[pid] + 1;
        }
        barrier();
    }
    out[pid] = hot[pid];
}

int main()
{
    int p;
    for (p = 0; p < nprocs(); p++) {
        create(worker, p);
    }
    wait_for_end();
    print(hot[0]);
    return 0;
}
"""

NOBAR_SRC = """
int flags[16];

void worker(int pid)
{
    flags[pid] = pid;
}

int main()
{
    int p;
    for (p = 0; p < nprocs(); p++) {
        create(worker, p);
    }
    wait_for_end();
    print(flags[0]);
    return 0;
}
"""


def interpret(source, sched=RR, nprocs=NPROCS):
    checked = compile_source(source)
    layout = DataLayout(checked, None, nprocs=nprocs)
    run = run_program(checked, layout, nprocs, sched=sched)
    return checked, layout, run


# ---------------------------------------------------------------------------
# The addressing overlay
# ---------------------------------------------------------------------------


class TestOverlay:
    def test_empty_overlay_is_identity(self):
        ov = AddressOverlay(block_size=64)
        addrs = np.array([0, 100, DYN_BASE + 5], dtype=np.int64)
        assert ov.translate(addrs) is addrs

    def test_pad_whole_preserves_offsets(self):
        ov = AddressOverlay(block_size=64)
        r = ov.pad_whole("x", lo=0x100, size=24)
        base = int(r.new_elem_base[0])
        assert base >= DYN_BASE and base % 64 == 0
        addrs = np.array([0x0FF, 0x100, 0x10B, 0x117, 0x118], dtype=np.int64)
        out = ov.translate(addrs)
        # inside [lo, lo+size) moves rigidly; outside passes through
        assert out.tolist() == [0x0FF, base, base + 0xB, base + 0x17, 0x118]

    def test_pad_elements_one_block_each(self):
        ov = AddressOverlay(block_size=64)
        lo, nelems, esize = 1000, 4, 8
        ov.pad_elements("x", lo=lo, nelems=nelems, elem_size=esize)
        addrs = np.array(
            [lo + i * esize + 3 for i in range(nelems)], dtype=np.int64
        )
        out = ov.translate(addrs)
        blocks = set((out // 64).tolist())
        assert len(blocks) == nelems  # every element on its own line
        assert all((a - 3) % 64 == 0 for a in out.tolist())

    def test_group_by_owner_packs_and_separates(self):
        ov = AddressOverlay(block_size=64)
        lo, esize = 2000, 4
        owners = [0, 1, 0, 1, None, 0]
        ov.group_by_owner(
            "g", lo=lo, nelems=6, elem_size=esize, owners=owners, nprocs=2
        )
        addrs = np.array([lo + i * esize for i in range(6)], dtype=np.int64)
        out = ov.translate(addrs).tolist()
        blk = [a // 64 for a in out]
        # same owner -> same segment (one block here); different owners
        # (and the ownerless tail) never share a block
        assert blk[0] == blk[2] == blk[5]
        assert blk[1] == blk[3]
        assert len({blk[0], blk[1], blk[4]}) == 3
        # owner-0 elements are packed contiguously in index order
        assert out[2] == out[0] + esize and out[5] == out[2] + esize

    def test_double_repair_rejected(self):
        ov = AddressOverlay(block_size=64)
        ov.pad_whole("x", lo=0, size=16)
        with pytest.raises(ReproError):
            ov.pad_elements("x", lo=0, nelems=4, elem_size=4)

    def test_overlapping_ranges_rejected(self):
        ov = AddressOverlay(block_size=64)
        ov.pad_whole("a", lo=100, size=50)
        with pytest.raises(ReproError):
            ov.pad_whole("b", lo=120, size=16)
        # adjacent (non-overlapping) is fine
        ov.pad_whole("c", lo=150, size=16)

    def test_guard_block_between_placements(self):
        ov = AddressOverlay(block_size=64)
        r1 = ov.pad_whole("a", lo=0x100, size=10)
        r2 = ov.pad_whole("b", lo=0x200, size=10)
        # size rounds up to one block, plus one guard block
        assert int(r2.new_elem_base[0]) >= int(r1.new_elem_base[0]) + 128

    def test_bytes_moved(self):
        ov = AddressOverlay(block_size=64)
        ov.pad_whole("a", lo=0, size=24)
        ov.pad_elements("b", lo=1000, nelems=4, elem_size=8)
        assert ov.bytes_moved == 24 + 32
        assert ov.repaired("a") and ov.repaired("b")
        assert not ov.repaired("c")


# ---------------------------------------------------------------------------
# Phase marks: the boundaries the engine acts on
# ---------------------------------------------------------------------------


class TestPhaseMarks:
    def test_counter_has_one_boundary(self):
        _, _, run = interpret(COUNTER_SRC)
        assert len(run.phase_marks) == 1
        assert 0 < run.phase_marks[0] < len(run.trace)

    def test_heap_rounds_mark_every_barrier(self):
        _, _, run = interpret(HEAP_SRC)
        marks = run.phase_marks
        assert len(marks) == 6  # one release per round
        assert marks == sorted(marks)
        assert len(set(marks)) == len(marks)
        assert all(0 < m <= len(run.trace) for m in marks)

    def test_barrier_free_run_has_no_marks(self):
        _, _, run = interpret(NOBAR_SRC)
        assert run.phase_marks == []

    def test_trace_cache_round_trips_marks(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "0")
        _, _, run = interpret(HEAP_SRC)
        key = trace_cache.run_key(
            HEAP_SRC, "natural", NPROCS, 128, 4, 200_000_000
        )
        assert trace_cache.store_run(key, run)
        loaded = trace_cache.load_run(key)
        assert loaded is not None
        assert loaded.phase_marks == run.phase_marks


# ---------------------------------------------------------------------------
# The mitigation engine
# ---------------------------------------------------------------------------


class TestEngine:
    @pytest.fixture(scope="class")
    def hot(self):
        return interpret(HOT_SRC)

    def test_zero_repairs_bit_identical_to_plain_sim(self, hot):
        checked, layout, run = hot
        plain = simulate_run(run, 64)
        dyn = mitigate(
            checked, layout, run,
            nprocs=NPROCS, block_size=64, max_repairs=0,
        )
        assert dyn.repairs == [] and dyn.overlay.relocations == []
        got, want = dyn.result, plain
        assert got.misses.as_tuple() == want.misses.as_tuple()
        assert got.invalidations == want.invalidations
        assert got.writebacks == want.writebacks
        assert got.upgrades == want.upgrades
        assert got.refs == want.refs
        assert got.extra_refs == want.extra_refs
        assert got.fs_by_block == want.fs_by_block
        assert got.fs_pair_by_block == want.fs_pair_by_block

    def test_mitigation_reduces_false_sharing(self, hot):
        checked, layout, run = hot
        plain = simulate_run(run, 64)
        dyn = mitigate(checked, layout, run, nprocs=NPROCS, block_size=64)
        assert dyn.repairs, "hot array never repaired"
        assert dyn.repairs[0].structure == "hot"
        assert dyn.repairs[0].phase == 0  # caught at the first boundary
        assert (
            dyn.result.misses.false_sharing < plain.misses.false_sharing
        )

    def test_counters_shape(self, hot):
        checked, layout, run = hot
        dyn = mitigate(checked, layout, run, nprocs=NPROCS, block_size=64)
        c = dyn.counters()
        assert set(c) == {
            "phases", "repairs", "repaired", "bytes_moved", "fs_at_repair",
        }
        assert c["phases"] == len(run.phase_marks) + 1
        assert c["repairs"] == len(dyn.repairs) >= 1
        assert "hot" in c["repaired"]
        assert c["bytes_moved"] >= 8 * 4  # the hot array's payload
        assert c["fs_at_repair"] > 0

    def test_plan_passes_the_oracle(self, hot):
        checked, layout, run = hot
        dyn = mitigate(checked, layout, run, nprocs=NPROCS, block_size=64)
        assert any(
            d.reason.startswith("dynamic:") for d in dyn.plan.decisions
        )
        base = observe(checked, None, NPROCS, block_size=64)[0]
        other = observe(checked, dyn.plan, NPROCS, block_size=64)[0]
        assert diff_states(base, other) == []

    def test_threshold_suppresses_repairs(self, hot):
        checked, layout, run = hot
        dyn = mitigate(
            checked, layout, run,
            nprocs=NPROCS, block_size=64, min_phase_fs=10**9,
        )
        assert dyn.repairs == []
        # still a faithful simulation of the unmitigated run
        assert (
            dyn.result.misses.as_tuple()
            == simulate_run(run, 64).misses.as_tuple()
        )

    def test_last_phase_never_repaired(self):
        # one barrier -> two phases; a repair at the final boundary would
        # mitigate nothing, so the counter program may only repair at
        # phase 0 (and its phase-1 traffic is too cold to trigger there)
        checked, layout, run = interpret(COUNTER_SRC)
        dyn = mitigate(checked, layout, run, nprocs=NPROCS, block_size=64)
        assert all(r.phase < len(run.phase_marks) for r in dyn.repairs)


# ---------------------------------------------------------------------------
# fs_pair_by_block conservation (the engine's signal) across schedulers
# ---------------------------------------------------------------------------


SCHEDS = [RR, SchedConfig("steal", seed=11)]


@pytest.mark.parametrize("sched", SCHEDS, ids=lambda s: s.kind)
def test_fs_pairs_conserved(sched):
    _, _, run = interpret(COUNTER_SRC, sched)
    res = simulate_run(run, 64)
    assert res.misses.false_sharing > 0
    # per block: the pair breakdown sums exactly to the block's FS count
    for b, pairs in res.fs_pair_by_block.items():
        assert sum(pairs.values()) == res.fs_by_block[b]
        for (writer, missing), n in pairs.items():
            assert writer != missing and n > 0
            assert -1 <= writer < NPROCS and -1 <= missing < NPROCS
    # and the grand total is the headline FS number
    total = sum(sum(p.values()) for p in res.fs_pair_by_block.values())
    assert total == res.misses.false_sharing
    assert set(res.fs_pair_by_block) == {
        b for b, n in res.fs_by_block.items() if n
    }


def test_fs_pairs_deterministic_under_steal():
    runs = [interpret(COUNTER_SRC, SchedConfig("steal", seed=11))[2]
            for _ in range(2)]
    a, b = (simulate_run(r, 64) for r in runs)
    assert a.fs_pair_by_block == b.fs_pair_by_block
    assert a.misses.as_tuple() == b.misses.as_tuple()
