"""Unit tests for the per-transformation rendering modules."""

from repro.lang import compile_source
from repro.rsd import Affine, Point, RSD, Range
from repro.transform.group_transpose import (
    PartitionShape,
    classify_partition,
    render_group,
)
from repro.transform.indirection import render_indirections
from repro.transform.locks import render_locks
from repro.transform.pad_align import render_pads
from repro.transform.plan import (
    GroupMember,
    Indirection,
    LockPad,
    PadAlign,
    TransformPlan,
)

MAIN = "int main() { return 0; }"


def checked_with(decls: str):
    return compile_source(decls + "\n" + MAIN)


class TestClassifyPartition:
    def test_point(self):
        shape = classify_partition(RSD((Point(Affine.pdv()),)), 8, 64)
        assert shape is not None and shape.kind == "point"

    def test_owned_scalar(self):
        shape = classify_partition(None, 8, 1)
        assert shape is not None and shape.kind == "point"

    def test_cyclic(self):
        part = RSD((Range(Affine.pdv(), Affine.constant(63), 8),))
        shape = classify_partition(part, 8, 64)
        assert shape.kind == "cyclic"
        assert shape.owner_expr == "i % 8"
        assert shape.slots_per_proc == 8

    def test_blocked(self):
        part = RSD((Range(Affine.pdv(16), Affine.pdv(16) + 15, 1),))
        shape = classify_partition(part, 4, 64)
        assert shape.kind == "blocked"
        assert shape.owner_expr == "i / 16"

    def test_unrecognized_returns_none(self):
        part = RSD((Range(Affine.pdv(3), Affine.constant(63), 5),))
        assert classify_partition(part, 8, 64) is None

    def test_offset_point_rejected(self):
        part = RSD((Point(Affine.pdv() + 1),))
        assert classify_partition(part, 8, 64) is None


class TestRenderGroup:
    def test_region_struct_padded_to_block(self):
        checked = checked_with("int a[64]; double b[64];")
        plan = TransformPlan(nprocs=4)
        pdv = RSD((Point(Affine.pdv()),))
        plan.group = [GroupMember("a", (), pdv), GroupMember("b", (), pdv)]
        r = render_group(checked, plan, block_size=128, nprocs=4)
        text = "\n".join(r.decl_lines)
        assert "int a;" in text and "double b;" in text
        assert "__pad[" in text
        assert "__fs_region[64];" in text  # sized to the declared extent

    def test_transposed_vector_helpers(self):
        checked = checked_with("int v[64];")
        plan = TransformPlan(nprocs=8)
        part = RSD((Range(Affine.pdv(), Affine.constant(63), 8),))
        plan.group = [GroupMember("v", (), part)]
        r = render_group(checked, plan, block_size=128, nprocs=8)
        assert "v" in r.transposed
        helpers = "\n".join(r.helper_lines)
        assert "__fs_owner_v" in helpers and "__fs_slot_v" in helpers

    def test_field_member_noted_not_rendered(self):
        checked = checked_with("struct c { int x; int y; }; struct c cs[16];")
        plan = TransformPlan(nprocs=4)
        plan.group = [GroupMember("cs", ("x",), RSD((Point(Affine.pdv()),)))]
        r = render_group(checked, plan, block_size=128, nprocs=4)
        assert r.notes  # handled by the layout, note emitted


class TestRenderPads:
    def test_scalar_pad_words(self):
        checked = checked_with("int g;")
        plan = TransformPlan(nprocs=4, pads=[PadAlign("g")])
        r = render_pads(checked, plan, block_size=128)
        text = "\n".join(r.decl_lines)
        assert "int g;" in text and "__pad_g[31]" in text

    def test_array_element_struct(self):
        checked = checked_with("double d[8];")
        plan = TransformPlan(nprocs=4, pads=[PadAlign("d", per_element=True)])
        r = render_pads(checked, plan, block_size=64)
        text = "\n".join(r.decl_lines)
        assert "struct __pad_d_t" in text
        assert "double v;" in text
        assert "d" in r.padded_arrays


class TestRenderLocks:
    def test_standalone_lock(self):
        checked = checked_with("lock_t l;")
        plan = TransformPlan(nprocs=4, lock_pads=[LockPad(base="l")])
        r = render_locks(checked, plan, block_size=128)
        assert any("lock_t l;" in x for x in r.decl_lines)

    def test_lock_array_struct(self):
        checked = checked_with("lock_t ls[4];")
        plan = TransformPlan(nprocs=4, lock_pads=[LockPad(base="ls")])
        r = render_locks(checked, plan, block_size=128)
        assert "ls" in r.padded_lock_arrays

    def test_struct_field_note(self):
        checked = checked_with("struct c { lock_t lk; int v; }; struct c cs[4];")
        plan = TransformPlan(
            nprocs=4, lock_pads=[LockPad(struct_field=("c", "lk"))]
        )
        r = render_locks(checked, plan, block_size=128)
        assert any("own block" in n for n in r.notes)


class TestRenderIndirections:
    def test_field_retyped_with_comment(self):
        checked = checked_with(
            "struct n { int v; int w; }; struct n *xs[8];"
        )
        plan = TransformPlan(nprocs=4, indirections=[Indirection("n", "v")])
        r = render_indirections(checked, plan)
        text = "\n".join(r.struct_lines_for("n"))
        assert "int *v;" in text
        assert "int w;" in text  # untouched sibling field
        assert ("n", "v") in r.fields
