"""Shared fixtures: small parallel-C programs exercising every subsystem."""

from __future__ import annotations

import os

import pytest

from repro.lang import compile_source


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current pipeline "
        "instead of diffing against them",
    )


@pytest.fixture(scope="session")
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache(tmp_path_factory):
    """Point the persistent trace cache at a throwaway directory so the
    suite neither reads stale entries nor litters the user's cache."""
    old = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = str(
        tmp_path_factory.mktemp("trace-cache")
    )
    yield
    if old is None:
        os.environ.pop("REPRO_TRACE_CACHE", None)
    else:
        os.environ["REPRO_TRACE_CACHE"] = old

#: The canonical counter kernel: textbook false sharing on `counter`,
#: a shared total behind a lock, one barrier phase boundary.
COUNTER_SRC = """
lock_t biglock;
int counter[16];
double sums[16];
int total;

void worker(int pid)
{
    int i;
    for (i = 0; i < 40; i++) {
        counter[pid] += 1;
        sums[pid] = sums[pid] + 1.5;
    }
    barrier();
    lock(&biglock);
    total = total + counter[pid];
    unlock(&biglock);
}

int main()
{
    int p;
    total = 0;
    for (p = 0; p < nprocs(); p++) {
        create(worker, p);
    }
    wait_for_end();
    print(total);
    return 0;
}
"""

#: Heap records reached through a partitioned pointer array: the
#: indirection case.
HEAP_SRC = """
struct node {
    int value;
    int count;
    int tag;
};

struct node *nodes[32];
int done[64];

void worker(int pid)
{
    int i;
    int r;
    for (r = 0; r < 6; r++) {
        for (i = pid; i < 32; i += nprocs()) {
            nodes[i]->count += 1;
            nodes[i]->value = nodes[i]->value + i;
        }
        barrier();
    }
    done[pid] = 1;
}

int main()
{
    int i;
    int p;
    struct node *np;
    for (i = 0; i < 32; i++) {
        np = alloc(struct node);
        np->tag = i;
        nodes[i] = np;
    }
    for (i = 0; i < 64; i++) {
        done[i] = 0;
    }
    for (p = 0; p < nprocs(); p++) {
        create(worker, p);
    }
    wait_for_end();
    print(nodes[0]->count);
    return 0;
}
"""

#: Blocked partition with an invariant chunk global and two phases.
BLOCKED_SRC = """
int data[96];
int acc[64];
int chunk;

void worker(int pid)
{
    int i;
    for (i = pid * chunk; i < pid * chunk + chunk; i++) {
        data[i] = data[i] + 1;
    }
    barrier();
    for (i = pid * chunk; i < pid * chunk + chunk; i++) {
        acc[pid] += data[i];
    }
}

int main()
{
    int i;
    int p;
    for (i = 0; i < 96; i++) {
        data[i] = i % 5;
    }
    for (i = 0; i < 64; i++) {
        acc[i] = 0;
    }
    chunk = 96 / nprocs();
    for (p = 0; p < nprocs(); p++) {
        create(worker, p);
    }
    wait_for_end();
    print(acc[0]);
    return 0;
}
"""


@pytest.fixture(scope="session")
def workload_run():
    """Interpret each workload once per session (natural layout, 4
    procs) and share the run across the engine-equivalence tests."""
    from repro.harness.pipeline import Pipeline

    runs: dict[str, object] = {}

    def get(wl, nprocs: int = 4):
        key = (wl.name, nprocs)
        if key not in runs:
            runs[key] = Pipeline(wl.source).execute(nprocs).run
        return runs[key]

    return get


@pytest.fixture(scope="session")
def counter_checked():
    return compile_source(COUNTER_SRC)


@pytest.fixture(scope="session")
def heap_checked():
    return compile_source(HEAP_SRC)


@pytest.fixture(scope="session")
def blocked_checked():
    return compile_source(BLOCKED_SRC)
