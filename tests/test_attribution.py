"""Miss-attribution tests: every simulated miss must fold to exactly one
source-level structure, and a planted false-sharing pair must be
pinpointed — structure, processors, and counts."""

import numpy as np
import pytest

from repro.harness.pipeline import Pipeline
from repro.obs.attribution import (
    fs_table,
    render_fs_table,
    render_heatmap,
    render_pair_breakdown,
)
from repro.runtime.trace import Trace
from repro.sim import CacheConfig, simulate_trace

from conftest import COUNTER_SRC

#: Two workers hammering adjacent words of one array — a planted
#: false-sharing pair with a known owner (`hot`) and known processors.
PLANTED_SRC = """
int hot[32];
int pad[64];
int done[8];

void worker(int pid)
{
    int i;
    for (i = 0; i < 200; i++) {
        hot[pid] = hot[pid] + 1;
    }
    done[pid] = 1;
}

int main()
{
    int p;
    for (p = 0; p < nprocs(); p++) {
        create(worker, p);
    }
    wait_for_end();
    print(hot[0] + hot[1]);
    return 0;
}
"""


@pytest.fixture(scope="module")
def planted():
    vr = Pipeline(PLANTED_SRC).execute(2)
    sim = vr.simulate(128)
    return vr, sim, vr.regions()


class TestPlantedPair:
    def test_planted_structure_gets_95_percent(self, planted):
        _, sim, regions = planted
        att = fs_table(sim, regions)
        assert sim.misses.false_sharing > 100  # the ping-pong happened
        hot = att.row("hot")
        assert hot.false_sharing >= 0.95 * att.total_fs

    def test_totals_are_exact(self, planted):
        _, sim, regions = planted
        att = fs_table(sim, regions)
        assert sum(r.misses for r in att.rows) == sim.total_misses
        assert sum(r.false_sharing for r in att.rows) == (
            sim.misses.false_sharing
        )
        assert sum(
            n for r in att.rows for n in r.pairs.values()
        ) == sim.misses.false_sharing

    def test_planted_pair_processors(self, planted):
        _, sim, regions = planted
        hot = fs_table(sim, regions).row("hot")
        # only P0 and P1 exist; every ping-pong is between them
        assert set(hot.pairs) <= {(0, 1), (1, 0)}
        assert hot.top_pair in {(0, 1), (1, 0)}

    def test_untouched_structure_has_no_false_sharing(self, planted):
        _, sim, regions = planted
        att = fs_table(sim, regions)
        # `pad` is never referenced: no misses, so no row at all
        with pytest.raises(KeyError):
            att.row("pad")
        assert all(r.name != "pad" for r in att.rows)


class TestPairTags:
    def test_synthetic_pingpong_pairs(self):
        """Alternating writers on one block: the (writer, misser) tag of
        each false-sharing miss names the invalidating processor."""
        n = 12
        trace = Trace(
            proc=np.array([i % 2 for i in range(n)], dtype=np.int32),
            addr=np.array([(i % 2) * 4 for i in range(n)], dtype=np.int64),
            size=np.full(n, 4, dtype=np.int32),
            is_write=np.ones(n, dtype=bool),
        )
        cfg = CacheConfig(size=1024, block_size=16, assoc=2)
        sim = simulate_trace(trace, 2, cfg)
        assert sim.misses.false_sharing == n - 2  # all but the 2 cold
        (pairs,) = sim.fs_pair_by_block.values()
        assert pairs == {(0, 1): (n - 2) // 2, (1, 0): (n - 2) // 2}

    def test_eviction_misses_carry_no_pair(self):
        """Replacement misses never appear in the pair tags."""
        n = 8
        # one processor cycling through 5 blocks in a 4-block cache
        trace = Trace(
            proc=np.zeros(5 * n, dtype=np.int32),
            addr=np.array(
                [16 * (i % 5) for i in range(5 * n)], dtype=np.int64
            ),
            size=np.full(5 * n, 4, dtype=np.int32),
            is_write=np.zeros(5 * n, dtype=bool),
        )
        cfg = CacheConfig(size=64, block_size=16, assoc=1)
        sim = simulate_trace(trace, 1, cfg)
        assert sim.misses.replace > 0
        assert sim.misses.false_sharing == 0
        assert sim.fs_pair_by_block == {}


class TestRendering:
    def test_fs_table_shows_checked_totals(self, planted):
        _, sim, regions = planted
        text = render_fs_table(sim, regions)
        assert "(= simulator totals)" in text
        assert "hot" in text
        total_line = next(
            line for line in text.splitlines() if "TOTAL" in line
        )
        assert str(sim.total_misses) in total_line
        assert str(sim.misses.false_sharing) in total_line

    def test_fs_table_limit_keeps_accounting(self, planted):
        _, sim, regions = planted
        text = render_fs_table(sim, regions, limit=1)
        assert "(other structures)" in text
        assert "(= simulator totals)" in text

    def test_pair_breakdown_names_processors(self, planted):
        _, sim, regions = planted
        text = render_pair_breakdown(sim, regions)
        assert "P0→P1" in text or "P1→P0" in text

    def test_heatmap_lists_residents(self, planted):
        _, sim, regions = planted
        text = render_heatmap(sim, regions)
        assert "hot" in text and "cache-line heatmap" in text

    def test_counter_kernel_attribution(self):
        """The canonical counter kernel: `counter`/`sums` dominate the
        false sharing and the fold is exact at 8 procs too."""
        vr = Pipeline(COUNTER_SRC).execute(8)
        sim = vr.simulate(128)
        att = fs_table(sim, vr.regions())  # internal asserts do the work
        hot = att.rows[0]
        assert hot.name in {"counter", "sums", "total", "biglock"}
        assert att.total_fs == sim.misses.false_sharing
