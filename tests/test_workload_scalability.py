"""Workload scalability smoke tests at small processor counts — the
full-size Table 3 / Figure 4 sweeps live in benchmarks/.

These pin the *qualitative* paper claims that survive even a short
sweep: the compiler version never loses to the others, and the
documented compiler-vs-programmer gaps point the right way.
"""

import pytest

from repro.harness import WorkloadLab, scalability
from repro.workloads import by_name

PROCS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def lab():
    return WorkloadLab()


class TestQualitativeClaims:
    def test_pverify_compiler_dominates(self, lab):
        sc = scalability(by_name("Pverify"), PROCS, lab)
        c, n, p = sc.curves["C"], sc.curves["N"], sc.curves["P"]
        for procs in PROCS[1:]:
            assert c.points[procs] > n.points[procs]
            assert c.points[procs] > p.points[procs]

    def test_fmm_programmer_tracks_unoptimized(self, lab):
        sc = scalability(by_name("Fmm"), PROCS, lab)
        n, p = sc.curves["N"], sc.curves["P"]
        for procs in PROCS:
            assert p.points[procs] == pytest.approx(n.points[procs], rel=0.05)

    def test_water_compiler_beats_programmer(self, lab):
        sc = scalability(by_name("Water"), PROCS, lab)
        assert sc.curves["C"].points[8] > 1.3 * sc.curves["P"].points[8]

    def test_mp3d_both_versions_poor(self, lab):
        sc = scalability(by_name("Mp3d"), PROCS, lab)
        # Mp3d barely scales no matter the layout (the paper: C 2.9, P 1.3)
        assert sc.curves["C"].max_speedup < 5.0
        assert sc.curves["C"].points[8] > sc.curves["P"].points[8]

    def test_speedups_normalized_to_unoptimized_uniprocessor(self, lab):
        sc = scalability(by_name("Raytrace"), PROCS, lab)
        assert sc.curves["N"].points[1] == pytest.approx(1.0)
        assert sc.baseline_cycles > 0

    def test_timings_recorded_per_point(self, lab):
        sc = scalability(by_name("Radiosity"), PROCS, lab)
        for curve in sc.curves.values():
            assert set(curve.timings) == set(PROCS)
            for t in curve.timings.values():
                assert t.cycles > 0 and t.transactions >= 0
