"""PDV detection and invariant propagation tests."""

from repro.analysis import detect_pdvs
from repro.ir import build_callgraph
from repro.lang import compile_source
from repro.rsd.expr import Affine


def analyze(src: str, nprocs: int = 8):
    checked = compile_source(src)
    cg = build_callgraph(checked)
    return detect_pdvs(checked, cg, nprocs)


class TestWorkerDetection:
    def test_basic_spawn_loop(self, counter_checked):
        from repro.ir import build_callgraph

        cg = build_callgraph(counter_checked)
        info = detect_pdvs(counter_checked, cg, 8)
        assert info.workers == {"worker": "pid"}
        assert info.spawn_uses_nprocs
        assert info.binding("worker", "pid") == Affine.pdv()

    def test_constant_spawn_arg_is_not_pdv(self):
        src = """
        void w(int pid) { }
        int main()
        {
            create(w, 3);
            wait_for_end();
            return 0;
        }
        """
        info = analyze(src)
        assert "w" not in info.workers

    def test_while_spawn_loop(self):
        src = """
        void w(int pid) { }
        int main()
        {
            int p;
            p = 0;
            while (p < nprocs()) {
                create(w, p);
                p += 1;
            }
            wait_for_end();
            return 0;
        }
        """
        info = analyze(src)
        assert info.workers == {"w": "pid"}


class TestInvariantPropagation:
    def test_derived_pdv(self):
        src = """
        int a[64];
        void w(int pid)
        {
            int twice;
            int shifted;
            twice = pid * 2;
            shifted = twice + 1;
            a[shifted] = 1;
        }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            return 0;
        }
        """
        info = analyze(src)
        assert info.binding("w", "twice") == Affine.pdv(2)
        assert info.binding("w", "shifted") == Affine.pdv(2) + 1

    def test_reassigned_variable_not_invariant(self):
        src = """
        int a[64];
        void w(int pid)
        {
            int x;
            x = pid;
            x = x + 1;
            a[x] = 1;
        }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            return 0;
        }
        """
        info = analyze(src)
        assert info.binding("w", "x") is None

    def test_loop_variable_not_invariant(self, counter_checked):
        from repro.ir import build_callgraph

        cg = build_callgraph(counter_checked)
        info = detect_pdvs(counter_checked, cg, 8)
        assert info.binding("worker", "i") is None

    def test_interprocedural_param_binding(self):
        src = """
        int a[64];
        void helper(int idx)
        {
            a[idx] = 1;
        }
        void w(int pid)
        {
            helper(pid * 2);
        }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            return 0;
        }
        """
        info = analyze(src)
        assert info.binding("helper", "idx") == Affine.pdv(2)

    def test_conflicting_call_sites_no_binding(self):
        src = """
        int a[64];
        void helper(int idx) { a[idx] = 1; }
        void w(int pid)
        {
            helper(pid);
            helper(pid + 1);
        }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            return 0;
        }
        """
        info = analyze(src)
        assert info.binding("helper", "idx") is None


class TestPrologueFolding:
    def test_chunk_folds_with_nprocs(self, blocked_checked):
        from repro.ir import build_callgraph

        cg = build_callgraph(blocked_checked)
        info = detect_pdvs(blocked_checked, cg, 8)
        assert info.invariant_globals.get("chunk") == 12  # 96 / 8

    def test_fold_scans_past_init_loops(self):
        src = """
        int data[16];
        int size;
        void w(int pid) { data[pid] = size; }
        int main()
        {
            int i;
            for (i = 0; i < 16; i++) { data[i] = 0; }
            size = 4 * nprocs();
            for (i = 0; i < nprocs(); i++) { create(w, i); }
            wait_for_end();
            return 0;
        }
        """
        info = analyze(src, nprocs=4)
        assert info.invariant_globals.get("size") == 16

    def test_global_assigned_in_worker_not_invariant(self):
        src = """
        int g;
        int a[64];
        void w(int pid) { g = pid; a[pid] = g; }
        int main()
        {
            int p;
            g = 7;
            for (p = 0; p < nprocs(); p++) { create(w, p); }
            wait_for_end();
            return 0;
        }
        """
        info = analyze(src)
        assert "g" not in info.invariant_globals

    def test_global_assigned_in_init_loop_not_invariant(self):
        src = """
        int g;
        int a[64];
        void w(int pid) { a[pid] = g; }
        int main()
        {
            int i;
            for (i = 0; i < 4; i++) { g = i; }
            for (i = 0; i < nprocs(); i++) { create(w, i); }
            wait_for_end();
            return 0;
        }
        """
        info = analyze(src)
        assert "g" not in info.invariant_globals
