"""Scheduler and trace-buffer unit tests."""

import pytest

from repro.errors import RuntimeFault
from repro.runtime import Proc, Scheduler, TraceBuffer


def make_proc(pid, gen):
    p = Proc(pid=pid)
    p.gen = gen
    return p


class TestScheduler:
    def test_round_robin_order(self):
        log = []

        def task(name, n):
            for i in range(n):
                log.append((name, i))
                yield

        sched = Scheduler(quantum=1)
        sched.add(make_proc(0, task("a", 3)))
        sched.add(make_proc(1, task("b", 3)))
        sched.run()
        # strict alternation with quantum 1
        assert log[:4] == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_quantum_batches(self):
        log = []

        def task(name):
            for i in range(4):
                log.append(name)
                yield

        sched = Scheduler(quantum=2)
        sched.add(make_proc(0, task("a")))
        sched.add(make_proc(1, task("b")))
        sched.run()
        assert log[:4] == ["a", "a", "b", "b"]

    def test_barrier_release(self):
        sched = Scheduler()
        sched.add(make_proc(0, iter(())))
        w1, w2 = Proc(pid=0), Proc(pid=1)
        sched.procs.extend([w1, w2])
        gen0 = sched.barrier_arrive(0)
        assert sched.barrier_generation == gen0
        sched.barrier_arrive(1)
        assert sched.barrier_generation == gen0 + 1
        assert not sched.barrier_waiting

    def test_worker_exit_releases_barrier(self):
        sched = Scheduler()
        w1, w2 = Proc(pid=0), Proc(pid=1)
        sched.procs.extend([w1, w2])
        gen0 = sched.barrier_arrive(0)
        w2.done = True
        sched.note_worker_done()
        assert sched.barrier_generation == gen0 + 1

    def test_max_steps_guard(self):
        def forever():
            while True:
                yield

        sched = Scheduler(quantum=1, max_steps=50)
        sched.add(make_proc(0, forever()))
        with pytest.raises(RuntimeFault, match="exceeded"):
            sched.run()

    def test_deadlock_detection(self):
        def blocked(proc):
            while True:
                proc.blocked_on = ("lock", 0)
                yield

        sched = Scheduler(quantum=1)
        p = Proc(pid=0)
        p.gen = blocked(p)
        sched.add(p)
        sched.locks[0] = 99  # held by a nonexistent owner
        with pytest.raises(RuntimeFault, match="deadlock"):
            sched.run()


class TestTraceBuffer:
    def test_append_and_freeze(self):
        buf = TraceBuffer()
        buf.append(0, 0x1000, 4, False)
        buf.append(1, 0x1004, 8, True)
        assert len(buf) == 2
        t = buf.freeze()
        assert len(t) == 2
        assert list(t.proc) == [0, 1]
        assert list(t.addr) == [0x1000, 0x1004]
        assert list(t.is_write) == [False, True]

    def test_iteration(self):
        buf = TraceBuffer()
        buf.append(2, 64, 4, True)
        (evt,) = list(buf.freeze())
        assert evt == (2, 64, 4, True)
