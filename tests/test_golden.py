"""Golden conformance snapshots: the tier-1 diff against checked-in
canonical results (refresh with ``pytest --update-golden``)."""

from __future__ import annotations

import json

import pytest

from repro.verify import golden

pytestmark = pytest.mark.golden


@pytest.mark.parametrize("name", golden.GOLDEN_WORKLOADS)
def test_snapshot_matches_golden(name, update_golden):
    actual = golden.compute_snapshot(name)
    path = golden.golden_path(name)
    if update_golden:
        golden.save(actual, path)
        return
    assert path.exists(), (
        f"golden snapshot {path} missing — run pytest --update-golden"
    )
    expected = golden.load(path)
    diffs = golden.diff(expected, actual)
    assert not diffs, (
        f"{name} diverges from its golden snapshot "
        f"(pytest --update-golden if intended):\n  " + "\n  ".join(diffs)
    )


@pytest.mark.parametrize("name", golden.GOLDEN_WORKLOADS)
def test_transforms_never_increase_false_sharing(name):
    """The paper's core claim, as a metamorphic property of the
    checked-in snapshots."""
    snap = golden.load(golden.golden_path(name))
    assert not golden.fs_not_increased(snap)


def test_snapshots_are_canonical_json():
    """Files on disk are exactly the canonical serialization (stable
    key order, trailing newline) — diffs stay reviewable."""
    for name in golden.GOLDEN_WORKLOADS:
        path = golden.golden_path(name)
        text = path.read_text()
        assert text == golden.dumps(json.loads(text))


def test_snapshot_shape():
    snap = golden.load(golden.golden_path(golden.GOLDEN_WORKLOADS[0]))
    assert snap["schema"] == golden.SCHEMA
    assert set(snap["versions"]) == {"N", "C"}
    for version in snap["versions"].values():
        for bs in snap["block_sizes"]:
            m = version["misses"][str(bs)]
            assert m["total"] == (
                m["cold"] + m["replace"] + m["true_sharing"] + m["false_sharing"]
            )


@pytest.mark.parametrize("name", golden.GOLDEN_WORKLOADS)
def test_sched_snapshot_matches_golden(name, update_golden):
    """Cross-scheduler conformance: the exact rr and per-seed steal miss
    breakdowns (and steal counters) are pinned per workload."""
    actual = golden.compute_sched_snapshot(name)
    path = golden.sched_golden_path(name)
    if update_golden:
        golden.save(actual, path)
        return
    assert path.exists(), (
        f"sched golden snapshot {path} missing — run pytest --update-golden"
    )
    expected = golden.load(path)
    diffs = golden.diff(expected, actual)
    assert not diffs, (
        f"{name} diverges from its sched golden snapshot "
        f"(pytest --update-golden if intended):\n  " + "\n  ".join(diffs)
    )


@pytest.mark.parametrize("name", golden.GOLDEN_WORKLOADS)
def test_steal_fs_within_rws_bound(name):
    """The Cole–Ramachandran property on the checked-in snapshots: steal
    FS stays inside the O(steals × block words) bound over rr FS, at
    every seed and block size."""
    snap = golden.load(golden.sched_golden_path(name))
    assert not golden.steal_fs_within_bound(snap)


@pytest.mark.parametrize("name", golden.GOLDEN_WORKLOADS)
def test_sched_snapshot_shape(name):
    snap = golden.load(golden.sched_golden_path(name))
    assert snap["schema"] == golden.SCHEMA
    assert set(snap["steal"]) == {
        str(s) for s in golden.GOLDEN_SCHED_SEEDS
    }
    assert snap["rr"].get("sched") is None
    word = str(golden.GOLDEN_SCHED_BLOCK_SIZES[0])
    assert snap["rr"]["misses"][word]["false_sharing"] == 0
    for rec in snap["steal"].values():
        stats = rec["sched"]
        assert stats["kind"] == "steal"
        assert stats["steals"] >= 0
        # word-granularity blocks cannot false-share under any schedule
        assert rec["misses"][word]["false_sharing"] == 0
        # steal executions reach the same program results as rr
        assert rec["output"] == snap["rr"]["output"]
        assert rec["exit_value"] == snap["rr"]["exit_value"]


def test_diff_reports_leaf_paths():
    a = {"x": {"y": 1, "z": 2}}
    b = {"x": {"y": 1, "z": 3}}
    diffs = golden.diff(a, b)
    assert diffs == ["x.z: golden 2, actual 3"]
    assert golden.diff(a, a) == []
    assert any(
        "missing" in d for d in golden.diff({"x": {"y": 1, "w": 0}}, a)
    )
