"""Golden conformance snapshots: the tier-1 diff against checked-in
canonical results (refresh with ``pytest --update-golden``)."""

from __future__ import annotations

import json

import pytest

from repro.verify import golden

pytestmark = pytest.mark.golden


@pytest.mark.parametrize("name", golden.GOLDEN_WORKLOADS)
def test_snapshot_matches_golden(name, update_golden):
    actual = golden.compute_snapshot(name)
    path = golden.golden_path(name)
    if update_golden:
        golden.save(actual, path)
        return
    assert path.exists(), (
        f"golden snapshot {path} missing — run pytest --update-golden"
    )
    expected = golden.load(path)
    diffs = golden.diff(expected, actual)
    assert not diffs, (
        f"{name} diverges from its golden snapshot "
        f"(pytest --update-golden if intended):\n  " + "\n  ".join(diffs)
    )


@pytest.mark.parametrize("name", golden.GOLDEN_WORKLOADS)
def test_transforms_never_increase_false_sharing(name):
    """The paper's core claim, as a metamorphic property of the
    checked-in snapshots."""
    snap = golden.load(golden.golden_path(name))
    assert not golden.fs_not_increased(snap)


def test_snapshots_are_canonical_json():
    """Files on disk are exactly the canonical serialization (stable
    key order, trailing newline) — diffs stay reviewable."""
    for name in golden.GOLDEN_WORKLOADS:
        path = golden.golden_path(name)
        text = path.read_text()
        assert text == golden.dumps(json.loads(text))


def test_snapshot_shape():
    snap = golden.load(golden.golden_path(golden.GOLDEN_WORKLOADS[0]))
    assert snap["schema"] == golden.SCHEMA
    assert set(snap["versions"]) == {"N", "C"}
    for version in snap["versions"].values():
        for bs in snap["block_sizes"]:
            m = version["misses"][str(bs)]
            assert m["total"] == (
                m["cold"] + m["replace"] + m["true_sharing"] + m["false_sharing"]
            )


def test_diff_reports_leaf_paths():
    a = {"x": {"y": 1, "z": 2}}
    b = {"x": {"y": 1, "z": 3}}
    diffs = golden.diff(a, b)
    assert diffs == ["x.z: golden 2, actual 3"]
    assert golden.diff(a, a) == []
    assert any(
        "missing" in d for d in golden.diff({"x": {"y": 1, "w": 0}}, a)
    )
