"""Property-based tests for the RSD algebra and the region map.

Runs under hypothesis when it is installed; a seeded stdlib-random
driver covers the same properties otherwise, so the suite's coverage
does not depend on optional packages.
"""

from __future__ import annotations

import random

import pytest

from repro.lang import compile_source
from repro.layout.datalayout import GROUP_BASE, DataLayout
from repro.layout.regions import build_region_map
from repro.rsd.descriptor import RSD, Point, Range, StridedUnknown, Unknown
from repro.rsd.expr import Affine
from repro.rsd.ops import (
    ap_intersect,
    disjoint_across_pdv,
    merge_elems,
    merge_rsds,
    owner_of,
    sections_intersect,
)
from repro.transform.plan import GroupMember, TransformPlan

from conftest import COUNTER_SRC, HEAP_SRC

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev deps
    HAVE_HYPOTHESIS = False

CASES = 300


def _ap_elements(ap: tuple[int, int, int]) -> set[int]:
    lo, hi, stride = ap
    return set(range(lo, hi + 1, stride))


def _random_ap(rng: random.Random) -> tuple[int, int, int]:
    lo = rng.randint(-20, 40)
    return (lo, lo + rng.randint(0, 60), rng.randint(1, 8))


def _random_elem(rng: random.Random):
    """A Point or Range, possibly PDV-dependent."""
    coeff = rng.choice((0, 0, 1, 2, 4, 8))
    base = rng.randint(0, 30)
    lo = Affine.pdv(coeff) + base
    if rng.random() < 0.3:
        return Point(lo)
    return Range(lo, lo + rng.randint(0, 24), rng.randint(1, 4))


def _elem_values(elem, pdv: int) -> set[int]:
    return _ap_elements(elem.instantiate(pdv))


# -- ap_intersect exactness --------------------------------------------------


def check_ap_intersect_exact(a, b):
    assert ap_intersect(a, b) == bool(_ap_elements(a) & _ap_elements(b))


def test_ap_intersect_matches_bruteforce_seeded():
    rng = random.Random(0)
    for _ in range(CASES):
        check_ap_intersect_exact(_random_ap(rng), _random_ap(rng))


if HAVE_HYPOTHESIS:
    ap_strategy = st.tuples(
        st.integers(-50, 50), st.integers(0, 80), st.integers(1, 9)
    ).map(lambda t: (t[0], t[0] + t[1], t[2]))

    @settings(max_examples=200, deadline=None)
    @given(ap_strategy, ap_strategy)
    def test_ap_intersect_matches_bruteforce_hypothesis(a, b):
        check_ap_intersect_exact(a, b)


# -- sections_intersect soundness --------------------------------------------


def check_sections_sound(rsd_a, pdv_a, rsd_b, pdv_b):
    """sections_intersect may over-approximate but never under-approximate."""
    inst_a, inst_b = rsd_a.instantiate(pdv_a), rsd_b.instantiate(pdv_b)
    truly = all(
        bool(_ap_elements(da) & _ap_elements(db))
        for da, db in zip(inst_a, inst_b)
    )
    got = sections_intersect(rsd_a, pdv_a, rsd_b, pdv_b)
    if truly:
        assert got, f"missed overlap: {rsd_a}@{pdv_a} vs {rsd_b}@{pdv_b}"
    else:
        assert not got, "exact 1-elem-per-dim case must be exact"


def test_sections_intersect_sound_seeded():
    rng = random.Random(1)
    for _ in range(CASES):
        ndim = rng.randint(1, 3)
        a = RSD(tuple(_random_elem(rng) for _ in range(ndim)))
        b = RSD(tuple(_random_elem(rng) for _ in range(ndim)))
        check_sections_sound(a, rng.randint(0, 3), b, rng.randint(0, 3))


# -- merge soundness (union over-approximation) ------------------------------


def check_merge_covers_both(a, b, pdvs=(0, 1, 3)):
    merged, _cost = merge_elems(a, b)
    if isinstance(merged, (Unknown, StridedUnknown)):
        return  # unbounded elements cover everything
    for pdv in pdvs:
        want = _elem_values(a, pdv) | _elem_values(b, pdv)
        got = _ap_elements(merged.instantiate(pdv))
        assert want <= got, (
            f"merge of {a} and {b} lost {sorted(want - got)[:5]} at pdv={pdv}"
        )


def test_merge_elems_is_union_superset_seeded():
    rng = random.Random(2)
    for _ in range(CASES):
        check_merge_covers_both(_random_elem(rng), _random_elem(rng))


def test_merge_rsds_is_union_superset_seeded():
    rng = random.Random(3)
    for _ in range(150):
        ndim = rng.randint(1, 2)
        a = RSD(tuple(_random_elem(rng) for _ in range(ndim)))
        b = RSD(tuple(_random_elem(rng) for _ in range(ndim)))
        merged, _cost = merge_rsds(a, b)
        for pdv in (0, 2):
            ia, ib = a.instantiate(pdv), b.instantiate(pdv)
            im = merged.instantiate(pdv)
            if im is None:
                continue
            for d in range(ndim):
                want = _ap_elements(ia[d]) | _ap_elements(ib[d])
                assert want <= _ap_elements(im[d])


if HAVE_HYPOTHESIS:
    elem_strategy = st.builds(
        lambda coeff, base, span, stride, is_point: (
            Point(Affine.pdv(coeff) + base)
            if is_point
            else Range(
                Affine.pdv(coeff) + base,
                Affine.pdv(coeff) + base + span,
                stride,
            )
        ),
        st.sampled_from([0, 1, 2, 4, 8]),
        st.integers(0, 30),
        st.integers(0, 24),
        st.integers(1, 4),
        st.booleans(),
    )

    @settings(max_examples=200, deadline=None)
    @given(elem_strategy, elem_strategy)
    def test_merge_elems_is_union_superset_hypothesis(a, b):
        check_merge_covers_both(a, b)


# -- ownership / disjointness ------------------------------------------------


def test_disjoint_across_pdv_implies_unique_owner():
    rng = random.Random(4)
    nprocs = 4
    found_disjoint = 0
    for _ in range(CASES):
        chunk = rng.choice((1, 2, 4, 8, 16))
        span = rng.randint(0, chunk * 2)
        rsd = RSD(
            (
                Range(
                    Affine.pdv(chunk),
                    Affine.pdv(chunk) + span,
                    rng.randint(1, 2),
                ),
            )
        )
        if not disjoint_across_pdv(rsd, nprocs):
            continue
        found_disjoint += 1
        for p in range(nprocs):
            lo, hi, stride = rsd.instantiate(p)[0]
            for x in range(lo, hi + 1, stride):
                assert owner_of(rsd, (x,), nprocs) == p
    assert found_disjoint > 20  # the generator must hit real partitions


# -- group & transpose containment ------------------------------------------


def _blocked_member(base: str, nelems: int, nprocs: int) -> GroupMember:
    chunk = max((nelems + nprocs - 1) // nprocs, 1)
    return GroupMember(
        base=base,
        partition=RSD(
            (Range(Affine.pdv(chunk), Affine.pdv(chunk) + (chunk - 1), 1),)
        ),
    )


@pytest.mark.parametrize("nprocs", [2, 4])
def test_group_region_sections_are_bounded_and_disjoint(nprocs):
    """After group & transpose, each owner's elements land in one
    bounded, block-aligned section; sections never interleave."""
    checked = compile_source(COUNTER_SRC)
    bs = 128
    plan = TransformPlan(
        nprocs=nprocs,
        group=[
            _blocked_member("counter", 16, nprocs),
            _blocked_member("sums", 16, nprocs),
        ],
    )
    layout = DataLayout(checked, plan, block_size=bs, nprocs=nprocs)
    spans: dict[int, list[int]] = {p: [] for p in range(nprocs)}
    for (base, path), amap in layout._group_addr.items():
        member = next(m for m in plan.group if m.base == base)
        for flat, addr in amap.items():
            owner = owner_of(member.partition, (flat,), nprocs)
            assert owner is not None, f"{base}[{flat}] has no owner"
            spans[owner].append(addr)
            assert addr >= GROUP_BASE
    intervals = sorted(
        (min(a), max(a), p) for p, a in spans.items() if a
    )
    assert len(intervals) == nprocs
    for (lo1, hi1, p1), (lo2, hi2, p2) in zip(intervals, intervals[1:]):
        assert hi1 < lo2, f"sections of proc {p1} and {p2} interleave"
        # a later owner's section starts on a fresh cache block
        assert lo2 % bs == 0
    assert layout.group_region_size > 0


# -- regions.names_in_range round trip ---------------------------------------


@pytest.mark.parametrize("src", [COUNTER_SRC, HEAP_SRC])
def test_region_map_round_trip(src):
    """Every address inside a global resolves to its name, and every
    window names exactly the structures it overlaps."""
    checked = compile_source(src)
    layout = DataLayout(checked, None, block_size=128, nprocs=4)
    regions = build_region_map(layout)
    rng = random.Random(5)
    infos = list(layout.globals.values())
    for info in infos:
        for _ in range(20):
            addr = info.base + rng.randrange(info.size)
            assert regions.name_of(addr) == info.name
            assert info.name in regions.names_in_range(addr, addr + 1)
    # windows spanning consecutive globals name both residents, in order
    ordered = sorted(infos, key=lambda i: i.base)
    for a, b in zip(ordered, ordered[1:]):
        names = regions.names_in_range(a.base, b.base + b.size)
        assert names.index(a.name) < names.index(b.name)


def test_names_in_range_window_is_exact():
    checked = compile_source(COUNTER_SRC)
    layout = DataLayout(checked, None, block_size=128, nprocs=4)
    regions = build_region_map(layout)
    rng = random.Random(6)
    lo_all = min(i.base for i in layout.globals.values())
    hi_all = max(i.base + i.size for i in layout.globals.values())
    for _ in range(200):
        lo = rng.randrange(lo_all, hi_all)
        hi = lo + rng.randint(1, 256)
        names = set(regions.names_in_range(lo, hi))
        expected = {
            i.name
            for i in layout.globals.values()
            if i.base < hi and i.base + i.size > lo
        }
        assert expected <= names
        extra = names - expected
        assert extra <= {"(unknown)"}, f"spurious names {extra}"
