"""Unit tests for the semantic checker and model restrictions."""

import pytest

from repro.errors import CheckError
from repro.lang import compile_source
from repro.lang import ctypes as T

MAIN = "int main() { return 0; }"


def check_ok(src: str):
    return compile_source(src + "\n" + MAIN)


def check_bad(src: str, fragment: str = ""):
    with pytest.raises(CheckError) as exc:
        compile_source(src + "\n" + MAIN)
    if fragment:
        assert fragment in str(exc.value)


class TestTyping:
    def test_int_double_promotion(self):
        check_ok("double f() { double d; d = 1 + 0.5; return d; }")

    def test_double_to_int_narrowing_rejected(self):
        check_bad("void f() { int x; x = 1.5; }", "narrowing")

    def test_toint_allows_conversion(self):
        check_ok("void f() { int x; x = toint(1.5); }")

    def test_modulo_requires_ints(self):
        check_bad("void f() { double d; d = 1.5 % 2.0; }")

    def test_condition_must_be_int(self):
        check_bad("void f() { if (1.5) { } }")

    def test_undeclared_identifier(self):
        check_bad("void f() { x = 1; }", "undeclared")

    def test_member_on_non_struct(self):
        check_bad("void f() { int x; x.y = 1; }")

    def test_unknown_field(self):
        check_bad(
            "struct s { int a; }; struct s g;\nvoid f() { g.b = 1; }",
            "no field",
        )

    def test_index_requires_int(self):
        check_bad("int a[4];\nvoid f() { a[1.5] = 1; }")

    def test_return_type_checked(self):
        check_bad("int f() { return; }")
        check_bad("void f() { return 1; }")

    def test_aggregate_assignment_rejected(self):
        check_bad(
            "struct s { int a; }; struct s x; struct s y;\n"
            "void f() { x = y; }",
            "aggregate",
        )

    def test_array_param_rejected(self):
        check_bad("void f(int a[4]) { }")


class TestModelRestrictions:
    def test_pointer_arithmetic_rejected(self):
        check_bad(
            "int *p;\nvoid f() { int x; x = 0; p = p + 1; }",
            "pointer arithmetic",
        )

    def test_null_assignment_allowed(self):
        check_ok("int *p;\nvoid f() { p = 0; }")

    def test_nonzero_int_to_pointer_rejected(self):
        check_bad("int *p;\nvoid f() { p = 4; }")

    def test_pointer_comparison_only_eq(self):
        check_bad("int *p; int *q;\nvoid f() { int x; x = p < q; }")

    def test_pointer_null_compare_ok(self):
        check_ok("int *p;\nvoid f() { if (p != 0) { } }")

    def test_local_lock_rejected(self):
        check_bad("void f() { lock_t l; }", "file scope")

    def test_create_only_in_main(self):
        check_bad(
            "void w(int pid) { }\nvoid f() { create(w, 0); }",
            "main",
        )

    def test_create_worker_signature(self):
        with pytest.raises(CheckError):
            compile_source(
                "void w(double x) { }\n"
                "int main() { create(w, 0); return 0; }"
            )

    def test_global_initializer_rejected(self):
        with pytest.raises(CheckError):
            compile_source("int x = 3;\n" + MAIN)

    def test_break_outside_loop(self):
        check_bad("void f() { break; }")

    def test_builtin_shadowing_rejected(self):
        check_bad("int barrier() { return 0; }", "builtin")

    def test_duplicate_function(self):
        check_bad("void f() { }\nvoid f() { }", "duplicate")

    def test_missing_main(self):
        with pytest.raises(CheckError):
            compile_source("void f() { }")


class TestSpawnDetection:
    def test_spawn_sites_recorded(self):
        src = """
        void w(int pid) { }
        int main()
        {
            int p;
            for (p = 0; p < nprocs(); p++) {
                create(w, p);
            }
            wait_for_end();
            return 0;
        }
        """
        checked = compile_source(src)
        assert checked.worker_names == ["w"]
        site = checked.spawn_sites[0]
        assert site.func_name == "w" and site.loop is not None

    def test_expression_types_annotated(self, counter_checked):
        from repro.lang import astnodes as A

        fn = counter_checked.program.func("worker")
        # every expression in the worker has a type after checking
        for stmt in A.walk_stmts(fn.body):
            for e in A.stmt_exprs(stmt):
                if isinstance(e, A.Ident) and e.name == "worker":
                    continue
                assert e.ty is not None, f"untyped expr {e}"

    def test_symbol_kinds(self, counter_checked):
        tab = counter_checked.symtab
        assert tab.globals["counter"].is_shared
        assert isinstance(tab.globals["biglock"].type, T.LockType)
