"""Streaming boundary: chunked simulation must be *bit-identical* to
monolithic, and peak memory must stay O(chunk) no matter how long the
trace is.

The load-bearing invariant is the :class:`~repro.sim.events.EventChunker`
carry: run-length compaction folds adjacent events, so a naive per-chunk
compaction would fold differently at chunk boundaries and shift
write-log timestamps.  The chunker holds back one event per chunk, so
the concatenated chunked emission is an exact re-slicing of the
monolithic compacted stream — verified directly, and end-to-end across
the chunk-size × block-size matrix the issue prescribes.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.stream import ChunkSink, TraceStream, stream_events
from repro.runtime.trace import Trace, TraceBuffer
from repro.sim import CacheConfig, EventChunker, build_events
from repro.sim.engine import (
    simulate_event_chunks,
    simulate_trace_chunked,
    simulate_trace_fast,
)
from repro.sim.kernel import load_kernel

from test_engine_equivalence import make_trace
from test_kernel import assert_same_result

HAVE_NATIVE = load_kernel() is not None


def random_trace(n, seed, *, procs=4, span=512):
    """A trace with real sharing: hot blocks, straddles, migratory data."""
    rng = np.random.default_rng(seed)
    addr = rng.integers(0, span, n) * 4
    # overlay a hot shared region so invalidations/FS actually happen
    hot = rng.random(n) < 0.25
    addr[hot] = rng.integers(0, 16, hot.sum()) * 4
    return Trace(
        proc=rng.integers(-1, procs, n).astype(np.int32),
        addr=addr.astype(np.int64),
        size=rng.choice([1, 2, 4, 8, 12], n).astype(np.int32),
        is_write=(rng.random(n) < 0.4),
    )


# ---------------------------------------------------------------------------
# EventChunker: chunked emission == monolithic compaction
# ---------------------------------------------------------------------------


def concat_streams(streams):
    cols = ("proc", "block", "w_lo", "w_hi", "is_write", "repeat")
    return {
        c: np.concatenate([getattr(s, c) for s in streams] or [np.empty(0)])
        for c in cols
    }


@settings(max_examples=100, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.integers(min_value=-1, max_value=3),
            st.integers(min_value=0, max_value=255),
            st.sampled_from([1, 3, 4, 8, 12]),
            st.booleans(),
        ),
        min_size=1,
        max_size=150,
    ),
    chunk=st.sampled_from([1, 2, 7, 33]),
    block=st.sampled_from([8, 32]),
)
def test_chunker_reslices_monolithic_stream(events, chunk, block):
    trace = make_trace(events)
    mono = build_events(trace, block)
    chunker = EventChunker(block)
    emitted = []
    for start in range(0, len(trace), chunk):
        stop = min(start + chunk, len(trace))
        ev = chunker.feed(
            trace.proc[start:stop], trace.addr[start:stop],
            trace.size[start:stop], trace.is_write[start:stop],
        )
        if len(ev):
            emitted.append(ev)
    tail = chunker.flush()
    if len(tail):
        emitted.append(tail)
    got = concat_streams(emitted)
    for col in ("proc", "block", "w_lo", "w_hi", "is_write", "repeat"):
        np.testing.assert_array_equal(
            got[col], getattr(mono, col), err_msg=col
        )
    assert sum(s.n_refs for s in emitted) == mono.n_refs


# ---------------------------------------------------------------------------
# satellite 4: the chunk-size × block-size identity matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("block_size", [4, 64, 128])
@pytest.mark.parametrize("chunk_refs", [1, 7, 4096])
def test_chunked_simulation_identical(chunk_refs, block_size):
    """Chunked simulation with carry-over state reproduces the
    monolithic SimResult exactly — every miss class, per-proc split,
    and fs_pair_by_block entry — across pathological (1), odd (7) and
    larger-than-trace (4096) chunk sizes."""
    trace = random_trace(2500, seed=block_size)
    cfg = CacheConfig(size=16 * block_size, block_size=block_size, assoc=2)
    mono = simulate_trace_fast(trace, 4, cfg, extra_refs=17)
    chunked = simulate_trace_chunked(
        trace, 4, cfg, chunk_refs, extra_refs=17
    )
    assert_same_result(chunked, mono)
    assert chunked.extra_refs == mono.extra_refs == 17
    assert chunked.misses == mono.misses


@pytest.mark.parametrize("chunk_refs", [1, 7, 4096])
def test_chunked_simulation_identical_word_invalidate(chunk_refs):
    """The streaming boundary also preserves the word-granularity
    (Dubois) comparison path, which always runs the Python core."""
    trace = random_trace(800, seed=3)
    cfg = CacheConfig(size=512, block_size=64, assoc=2)
    mono = simulate_trace_fast(trace, 4, cfg, word_invalidate=True)
    chunked = simulate_trace_chunked(
        trace, 4, cfg, chunk_refs, word_invalidate=True
    )
    assert_same_result(chunked, mono)


def test_chunked_workload_identical(workload_run):
    from repro.workloads.registry import SIMULATION_WORKLOADS

    wl = SIMULATION_WORKLOADS[0]
    run = workload_run(wl)
    cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)
    mono = simulate_trace_fast(run.trace, run.nprocs, cfg)
    chunked = simulate_trace_chunked(run.trace, run.nprocs, cfg, 1000)
    assert_same_result(chunked, mono)


# ---------------------------------------------------------------------------
# ChunkSink / TraceStream: the interpreter side of the boundary
# ---------------------------------------------------------------------------


def test_chunk_sink_reassembles_exactly():
    sink_chunks = []
    sink = ChunkSink(sink_chunks.append, chunk_refs=10)
    ref = TraceBuffer()
    rng = np.random.default_rng(5)
    for i in range(237):
        row = (int(rng.integers(0, 4)), int(rng.integers(0, 1024)) * 4,
               4, bool(rng.random() < 0.5))
        sink.append(*row)
        ref.append(*row)
    frozen = sink.freeze()
    assert len(frozen) == 0  # streamed runs carry no materialized trace
    assert sink.total_refs == 237 and sink.chunks == 24
    got = np.concatenate([c.addr for c in sink_chunks])
    np.testing.assert_array_equal(got, ref.freeze().addr)


def test_trace_stream_matches_batch_run(counter_checked):
    """Streaming interpretation emits the same trace (chunk-concatenated)
    and the same RunResult counters as the batch interpreter."""
    from repro.layout import DataLayout
    from repro.runtime import run_program

    layout = DataLayout(counter_checked, nprocs=4, block_size=64)
    batch = run_program(counter_checked, layout, 4)

    stream = TraceStream(counter_checked, layout, 4, chunk_refs=500)
    chunks = list(stream)
    run = stream.run
    assert run is not None and len(run.trace) == 0
    assert run.output == batch.output
    assert run.exit_value == batch.exit_value
    assert run.work == batch.work
    assert run.private_refs == batch.private_refs
    assert run.shared_refs == batch.shared_refs
    assert run.heap_segments == batch.heap_segments
    for col in ("proc", "addr", "size", "is_write"):
        np.testing.assert_array_equal(
            np.concatenate([getattr(c, col) for c in chunks]),
            getattr(batch.trace, col), err_msg=col,
        )
    with pytest.raises(RuntimeError):
        iter(stream).__next__()  # iterate-once guard


def test_trace_stream_propagates_errors(counter_checked):
    from repro.layout import DataLayout

    layout = DataLayout(counter_checked, nprocs=4, block_size=64)
    stream = TraceStream(
        counter_checked, layout, 4, chunk_refs=100, max_steps=50
    )
    with pytest.raises(Exception, match="step"):
        list(stream)


def test_stream_simulate_matches_batch(counter_checked):
    from repro.layout import DataLayout
    from repro.runtime import run_program
    from repro.runtime.stream import stream_simulate
    from repro.sim import simulate_trace_fast as fast

    layout = DataLayout(counter_checked, nprocs=4, block_size=64)
    cfg = CacheConfig(size=32 * 1024, block_size=64, assoc=4)
    batch = run_program(counter_checked, layout, 4)
    expect = fast(
        batch.trace, 4, cfg,
        extra_refs=sum(batch.private_refs.values()),
    )
    seen = []
    res, run, stats = stream_simulate(
        counter_checked, layout, 4, cfg,
        chunk_refs=300, sink=seen.append,
    )
    assert_same_result(res, expect)
    assert res.extra_refs == expect.extra_refs
    assert run.output == batch.output
    assert sum(len(c) for c in seen) == len(batch.trace)  # tee saw it all
    assert stats.chunks_produced == stats.chunks_consumed == len(seen)
    assert stats.refs == len(batch.trace)
    assert stats.queue_high_water >= 1
    d = stats.to_dict()
    assert d["chunks_produced"] == stats.chunks_produced
    assert d["stall_seconds"] >= 0.0


def test_streamed_span_parity(monkeypatch):
    """The streamed path emits the same ``pipeline.execute`` span as the
    batch path (tagged ``streamed``), with ``stream.produce`` /
    ``stream.consume`` children covering the concurrent stages."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    from repro.harness.pipeline import Pipeline
    from repro.obs import spans as obs

    from conftest import COUNTER_SRC

    obs.enable()
    obs.reset()
    try:
        pipe = Pipeline(COUNTER_SRC, block_size=64)
        res, vr = pipe.simulate_streamed(4, chunk_refs=300)

        def find(spans, name):
            for sp in spans:
                if sp.name == name:
                    return sp
                got = find(sp.children, name)
                if got is not None:
                    return got
            return None

        execute = find(obs.roots(), "pipeline.execute")
        assert execute is not None
        assert execute.meta["streamed"] is True
        assert execute.meta["from_cache"] is False
        run_sp = find([execute], "sim.stream_run")
        assert run_sp is not None
        produce = find([run_sp], "stream.produce")
        consume = find([run_sp], "stream.consume")
        assert produce is not None and consume is not None
        assert produce.meta["chunks"] == consume.meta["chunks"] > 0
        assert produce.meta["queue_high_water"] >= 1
        assert produce.dur > 0 and consume.dur > 0
        # the stats the spans were stitched from ride on the VersionRun
        assert vr.stream_stats is not None
        assert vr.stream_stats.chunks_produced == produce.meta["chunks"]
    finally:
        obs.reset()
        obs.disable()


def test_pipeline_streamed_roundtrip(tmp_path, monkeypatch):
    """Pipeline.simulate_streamed: fresh interpretation persists shards;
    the second call replays them chunk-by-chunk with identical results."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    monkeypatch.setenv("REPRO_TRACE_CACHE_MIN", "1")
    monkeypatch.setenv("REPRO_TRACE_SHARD_REFS", "400")
    from repro.harness.pipeline import Pipeline
    from repro.layout import DataLayout
    from repro.runtime import run_program
    from repro.sim import simulate_trace_fast as fast

    from conftest import COUNTER_SRC

    pipe = Pipeline(COUNTER_SRC, block_size=64)
    # expectation via the batch interpreter, bypassing the trace cache
    layout = DataLayout(pipe.checked, nprocs=4, block_size=64)
    batch = run_program(pipe.checked, layout, 4)
    cfg = CacheConfig(size=32 * 1024, block_size=64, assoc=4)
    expect = fast(
        batch.trace, 4, cfg, extra_refs=sum(batch.private_refs.values())
    )

    res1, v1 = pipe.simulate_streamed(4, chunk_refs=300)
    assert not v1.from_cache
    assert list(tmp_path.rglob("*.npz")), "streamed run must persist shards"
    res2, v2 = pipe.simulate_streamed(4, chunk_refs=300)
    assert v2.from_cache
    assert_same_result(res1, expect)
    assert_same_result(res2, expect)
    assert res1.extra_refs == res2.extra_refs == expect.extra_refs
    assert v1.run.output == v2.run.output == batch.output


# ---------------------------------------------------------------------------
# scale: 10x the events, O(chunk) memory
# ---------------------------------------------------------------------------


def synthetic_chunks(total_refs, chunk_refs, *, procs=8, seed=1):
    """Generate trace chunks on the fly — the full trace never exists."""
    rng = np.random.default_rng(seed)
    done = 0
    while done < total_refs:
        n = min(chunk_refs, total_refs - done)
        addr = rng.integers(0, 1 << 16, n) * 4
        hot = rng.random(n) < 0.2
        addr[hot] = rng.integers(0, 64, int(hot.sum())) * 4
        yield Trace(
            proc=rng.integers(0, procs, n).astype(np.int32),
            addr=addr.astype(np.int64),
            size=np.full(n, 4, np.int32),
            is_write=(rng.random(n) < 0.3),
        )
        done += n


@pytest.mark.skipif(not HAVE_NATIVE, reason="needs the native kernel "
                    "(10x-scale run is too slow on the Python core)")
def test_scaled_workload_capped_memory():
    """A workload ~10x the batch path's biggest event counts runs
    through the streaming boundary under a hard peak-memory cap far
    below what materializing the trace would need (~170 MB of columns
    for 10M refs at ~17 bytes/ref)."""
    total = 10_000_000
    chunk = 262_144
    cfg = CacheConfig(size=32 * 1024, block_size=64, assoc=4)
    tracemalloc.start()
    tracemalloc.reset_peak()
    res = simulate_event_chunks(
        stream_events(synthetic_chunks(total, chunk), 64),
        8, cfg, kernel="native",
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert res.refs == total
    assert res.kernel == "native"
    assert res.misses.false_sharing > 0  # the hot region shares for real
    cap = 80 * 1024 * 1024
    assert peak < cap, (
        f"peak traced memory {peak / 1e6:.1f} MB exceeds the "
        f"{cap / 1e6:.0f} MB O(chunk) budget"
    )


def test_scaled_equivalence_sampled():
    """A smaller slice of the scaled generator, cross-checked against
    the monolithic path (both cores exercised when available)."""
    chunks = list(synthetic_chunks(60_000, 7_000, seed=9))
    whole = Trace(
        proc=np.concatenate([c.proc for c in chunks]),
        addr=np.concatenate([c.addr for c in chunks]),
        size=np.concatenate([c.size for c in chunks]),
        is_write=np.concatenate([c.is_write for c in chunks]),
    )
    cfg = CacheConfig(size=16 * 1024, block_size=64, assoc=4)
    mono = simulate_trace_fast(whole, 8, cfg)
    streamed = simulate_event_chunks(
        stream_events(iter(chunks), 64), 8, cfg,
    )
    assert_same_result(streamed, mono)
