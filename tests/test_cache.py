"""Single-cache model tests (LRU, eviction, configuration)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Cache, CacheConfig, INVALID, MODIFIED, SHARED


class TestConfig:
    def test_n_sets(self):
        cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)
        assert cfg.n_sets == 64

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(SimulationError):
            CacheConfig(block_size=100)

    def test_indivisible_size_rejected(self):
        with pytest.raises(SimulationError):
            CacheConfig(size=1000, block_size=128, assoc=4)


class TestLRU:
    def _small(self):
        # 2 sets, 2-way: block numbers with the same parity conflict
        return Cache(CacheConfig(size=4 * 64, block_size=64, assoc=2))

    def test_insert_and_state(self):
        c = self._small()
        c.insert(0, SHARED)
        assert c.state(0) == SHARED
        assert c.state(2) == INVALID

    def test_eviction_is_lru(self):
        c = self._small()
        assert c.insert(0, SHARED) is None
        assert c.insert(2, SHARED) is None  # same set (even)
        c.touch(0)  # 0 becomes MRU, 2 is now LRU
        victim = c.insert(4, SHARED)
        assert victim == (2, SHARED)

    def test_dirty_victim_reported(self):
        c = self._small()
        c.insert(0, MODIFIED)
        c.insert(2, SHARED)
        victim = c.insert(4, SHARED)
        assert victim == (0, MODIFIED)

    def test_invalidate_removes(self):
        c = self._small()
        c.insert(0, MODIFIED)
        assert c.invalidate(0) == MODIFIED
        assert c.state(0) == INVALID
        assert c.invalidate(0) == INVALID

    def test_reinsert_no_eviction(self):
        c = self._small()
        c.insert(0, SHARED)
        c.insert(2, SHARED)
        assert c.insert(0, MODIFIED) is None  # already resident
        assert c.state(0) == MODIFIED

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
    def test_capacity_invariant(self, blocks):
        c = Cache(CacheConfig(size=8 * 64, block_size=64, assoc=2))
        for b in blocks:
            c.insert(b, SHARED)
            for s in c.sets:
                assert len(s) <= 2
        # every resident block maps to its own set
        for i, s in enumerate(c.sets):
            for b in s:
                assert b % c.n_sets == i
