"""TransformPlan canonicalization and content fingerprints."""

import random

from repro.rsd.descriptor import RSD, Range
from repro.rsd.expr import Affine
from repro.transform.plan import (
    GroupMember,
    Indirection,
    LockPad,
    PadAlign,
    TransformPlan,
)


def _partition(chunk: int) -> RSD:
    return RSD(
        (Range(Affine.pdv(chunk), Affine.pdv(chunk) + (chunk - 1), 1),)
    )


def _rich_plan() -> TransformPlan:
    return TransformPlan(
        nprocs=8,
        group=[
            GroupMember("a", (), _partition(4)),
            GroupMember("flag", (), None, 0),
            GroupMember("b", ("x",), _partition(2)),
        ],
        indirections=[Indirection("node", "count"), Indirection("node", "value")],
        pads=[PadAlign("cells", per_element=True), PadAlign("total")],
        lock_pads=[LockPad(base="biglock"), LockPad(struct_field=("c", "lk"))],
        record_pads=["node", "cell"],
    )


class TestFingerprint:
    def test_order_independent(self):
        a = _rich_plan()
        b = _rich_plan()
        rng = random.Random(7)
        for lst in (b.group, b.indirections, b.pads, b.lock_pads,
                    b.record_pads):
            rng.shuffle(lst)
        assert a.fingerprint == b.fingerprint
        assert a.identity() == b.identity()

    def test_duplicates_ignored(self):
        a = _rich_plan()
        b = _rich_plan()
        b.pads.append(PadAlign("cells", per_element=True))
        b.indirections.append(Indirection("node", "count"))
        b.group.append(GroupMember("flag", (), None, 0))
        b.lock_pads.append(LockPad(base="biglock"))
        b.record_pads.append("node")
        assert a.fingerprint == b.fingerprint

    def test_content_sensitive(self):
        a = _rich_plan()
        for mutate in (
            lambda p: p.pads.append(PadAlign("zzz")),
            lambda p: p.group.pop(),
            lambda p: p.indirections.append(Indirection("node", "tag")),
            lambda p: p.lock_pads.pop(),
            lambda p: p.record_pads.pop(),
        ):
            b = _rich_plan()
            mutate(b)
            assert a.fingerprint != b.fingerprint

    def test_nprocs_in_identity(self):
        a = _rich_plan()
        b = _rich_plan()
        b.nprocs = 16
        assert a.fingerprint != b.fingerprint

    def test_decisions_excluded(self):
        from repro.transform.plan import Decision

        a = _rich_plan()
        b = _rich_plan()
        b.decisions.append(Decision("a", "none", "audit only"))
        assert a.fingerprint == b.fingerprint

    def test_empty_vs_empty(self):
        assert (
            TransformPlan(nprocs=4).fingerprint
            == TransformPlan(nprocs=4).fingerprint
        )


class TestCanonical:
    def test_sorted_and_deduped(self):
        p = _rich_plan()
        rng = random.Random(3)
        for lst in (p.group, p.indirections, p.pads, p.lock_pads,
                    p.record_pads):
            rng.shuffle(lst)
        p.pads.append(PadAlign("cells", per_element=True))
        c = p.canonical()
        assert [(i.struct, i.field) for i in c.indirections] == [
            ("node", "count"), ("node", "value")
        ]
        assert [(pa.base, pa.per_element) for pa in c.pads] == [
            ("cells", True), ("total", False)
        ]
        assert c.record_pads == ["cell", "node"]
        assert len(c.group) == 3
        assert c.fingerprint == _rich_plan().fingerprint

    def test_describe_stable_across_orderings(self):
        a = _rich_plan()
        b = _rich_plan()
        rng = random.Random(11)
        for lst in (b.group, b.indirections, b.pads, b.lock_pads):
            rng.shuffle(lst)
        # describe() is the persistent trace-cache key: canonical plans
        # must render identically no matter how they were assembled
        assert a.canonical().describe() == b.canonical().describe()

    def test_canonical_preserves_semantics_fields(self):
        p = _rich_plan()
        c = p.canonical()
        assert c.nprocs == p.nprocs
        assert not c.is_empty
        assert c.decisions == p.decisions

    def test_heuristic_plan_canonical_roundtrip(self, counter_checked):
        from repro.analysis import analyze_program
        from repro.transform import decide_transformations

        plan = decide_transformations(analyze_program(counter_checked, 8))
        c = plan.canonical()
        assert c.fingerprint == plan.fingerprint
        assert c.canonical().describe() == c.describe()
