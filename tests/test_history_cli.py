"""``repro history`` / ``repro report`` and the dashboard renderer."""

import json

import pytest

from repro.cli import main
from repro.obs.dashboard import heatmap, polyline_chart, render_dashboard
from repro.obs.store import RunStore

from test_store import make_record, write_log


@pytest.fixture()
def log(tmp_path):
    records = []
    i = 0
    for w in ("Maxflow/N", "Maxflow/C"):
        for bs in (16, 128):
            for _ in range(6):
                records.append(
                    make_record(
                        i, workload=w, block_size=bs,
                        fs=400 if w.endswith("N") else 80,
                    )
                )
                i += 1
    return write_log(tmp_path / "runs.jsonl", records)


@pytest.fixture()
def store_dir(tmp_path):
    return str(tmp_path / "store")


class TestHistoryCLI:
    def test_ingest_and_grouped_table(self, log, store_dir, capsys):
        rc = main([
            "history", "--store", store_dir, "--ingest", str(log),
            "--group-by", "workload,block_size",
            "--agg", "mean:fs", "--agg", "count",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean(misses.false)" in out
        assert "Maxflow/N" in out and "400" in out and "80" in out

    def test_json_and_csv_formats(self, log, store_dir, capsys):
        main(["history", "--store", store_dir, "--ingest", str(log),
              "--group-by", "workload", "--agg", "count",
              "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert {r["count"] for r in data["rows"]} == {12}
        main(["history", "--store", store_dir, "--format", "csv",
              "--group-by", "workload", "--agg", "count"])
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "workload,count"
        assert len(lines) == 3

    def test_where_filter_and_limit(self, log, store_dir, capsys):
        main(["history", "--store", store_dir, "--ingest", str(log),
              "--where", "workload=Maxflow/C", "--where", "block_size=128",
              "--limit", "4", "--fields", "workload,block_size,fs"])
        out = capsys.readouterr().out
        rows = [l for l in out.splitlines() if l.startswith("Maxflow")]
        assert len(rows) == 4
        assert all("128" in r for r in rows)

    def test_bad_filter_is_a_diagnostic(self, store_dir, capsys):
        rc = main(["history", "--store", store_dir, "--where", "nonsense"])
        assert rc == 2
        assert "bad filter" in capsys.readouterr().err

    def test_compact(self, log, store_dir, capsys):
        main(["history", "--store", store_dir, "--ingest", str(log),
              "--compact"])
        err = capsys.readouterr().err
        assert "compacted" in err

    def test_sentinel_quiet_then_flags_doctored_log(
        self, log, store_dir, tmp_path, capsys
    ):
        assert main(["history", "--store", store_dir, "--ingest", str(log),
                     "--sentinel"]) == 0
        assert "0 alert(s)" in capsys.readouterr().out
        # doctor the newest Maxflow/N record: double its fs misses
        doctored = make_record(
            999, workload="Maxflow/N", block_size=128, fs=800,
            ts="2026-09-01T00:00:00+00:00",
        )
        dlog = write_log(tmp_path / "doctored.jsonl", [doctored])
        rc = main(["history", "--store", store_dir, "--ingest", str(dlog),
                   "--sentinel"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION misses.false" in out
        assert "x2.00" in out


class TestReportCLI:
    def test_dashboard_written(self, log, store_dir, tmp_path, capsys):
        out_html = tmp_path / "dash.html"
        rc = main(["report", "--store", store_dir, "--ingest", str(log),
                   "--dashboard", str(out_html)])
        assert rc == 0
        html = out_html.read_text()
        assert html.startswith("<!doctype html>")
        assert "<svg" in html              # charts rendered inline
        assert "Maxflow/N" in html
        assert "script" not in html.lower()  # no JS, archivable artifact


class TestDashboard:
    def test_empty_store_renders_valid_page(self, tmp_path):
        html = render_dashboard(RunStore(tmp_path / "empty"))
        assert "<!doctype html>" in html
        assert "no records ingested yet" in html

    def test_polyline_needs_two_points(self):
        assert "not enough history" in polyline_chart([("x", [1.0])])
        svg = polyline_chart([("fs", [1.0, 2.0, 3.0])], y_label="misses")
        assert "<polyline" in svg and "misses" in svg

    def test_heatmap_normalizes_per_row(self):
        svg = heatmap([("Maxflow", [0.0, 5.0, 10.0])])
        # the row maximum renders at full intensity
        assert "rgb(255,75,35)" in svg
        assert "Maxflow run 2: 10" in svg

    def test_sections_present_with_history(self, tmp_path):
        store = RunStore(tmp_path / "s")
        store.ingest_records([make_record(i, fs=100 + i) for i in range(6)])
        html = render_dashboard(store)
        for section in ("Miss breakdown over time", "False sharing over time",
                        "Cache hit rates", "Span time per run"):
            assert section in html
