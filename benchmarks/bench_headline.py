"""Section-5 headline statistics: at 128-byte blocks ~70% of misses are
false sharing; the transformations eliminate ~80% of them while raising
other misses ~19%; total misses roughly halve (49% at 64 bytes)."""

from conftest import emit

from repro.harness import headline, render_headline


def test_headline(benchmark, lab):
    stats = benchmark.pedantic(
        lambda: headline(lab=lab), rounds=1, iterations=1
    )
    emit("Section 5 headline statistics", render_headline(stats))

    # shape targets (bands around the paper's aggregates)
    assert 0.5 <= stats.fs_fraction_of_misses <= 0.95
    assert 0.6 <= stats.fs_eliminated <= 1.0
    assert stats.other_miss_increase > 0.0  # transformations do cost misses
    assert 0.3 <= stats.total_miss_reduction_128 <= 0.85
    assert 0.3 <= stats.total_miss_reduction_64 <= 0.85
