"""Micro-benchmarks of the fast-path simulation engine: trace freeze,
event-stream precompute, reference vs fast vs native-kernel simulator
throughput, the simulation memo — and the headline warm-grid timing,
which appends a machine-readable point to
``benchmarks/results/BENCH_engine.json`` (python-core vs native-kernel
wall-clock over the full experiment grid with a warm trace cache).

Baselines recorded in ``benchmarks/results/engine_baseline.txt``; see
EXPERIMENTS.md ("The performance engine") and docs/PERFORMANCE.md for
the measurement protocol.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.runtime.trace import Trace, TraceBuffer
from repro.sim import CacheConfig, build_events, simulate_trace
from repro.sim.engine import simulate_trace_fast
from repro.sim.kernel import KERNEL_ENV, load_kernel
from repro.sim.simcache import cached_simulate, clear

HAVE_NATIVE = load_kernel() is not None

BENCH_JSON = Path(__file__).parent / "results" / "BENCH_engine.json"


def append_bench_point(point: dict, path: Path = BENCH_JSON) -> Path:
    """Append one timing point to ``BENCH_engine.json`` (a JSON list;
    created when absent)."""
    points: list[dict] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                points = loaded
        except (OSError, ValueError):
            points = []
    points.append(point)
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(points, indent=2) + "\n")
    return path


def sentinel_check(path: Path, metrics: tuple) -> None:
    """Judge the just-appended trajectory point against its history with
    the regression sentinel.  Always prints alerts; only *fails* when
    ``REPRO_BENCH_SENTINEL=1`` (the CI opt-in — local one-off runs on
    slow machines should record, not abort)."""
    from repro.obs.sentinel import bench_sentinel_fatal, check_bench_trajectory

    report = check_bench_trajectory(path, metrics)
    if report.alerts:
        print(f"\n{report.describe()}")
        if bench_sentinel_fatal():
            raise AssertionError(
                f"bench sentinel flagged {len(report.alerts)} regression(s) "
                f"in {path.name}: "
                + "; ".join(a.describe() for a in report.alerts)
            )


def synthetic_trace(n=200_000, procs=8, seed=7):
    rng = np.random.default_rng(seed)
    return Trace(
        proc=rng.integers(0, procs, n).astype(np.int32),
        addr=(rng.integers(0, 8192, n) * 4).astype(np.int64),
        size=np.where(rng.random(n) < 0.1, 8, 4).astype(np.int32),
        is_write=rng.random(n) < 0.4,
    )


def test_trace_freeze(benchmark):
    """Columnar append + freeze of a 200k-reference trace."""
    def go():
        buf = TraceBuffer()
        append = buf.append
        for i in range(200_000):
            append(i & 7, (i * 4) & 0xFFFF, 4, i & 1 == 0)
        return buf.freeze()

    tr = benchmark.pedantic(go, rounds=2, iterations=1)
    assert len(tr) == 200_000


def test_event_precompute(benchmark):
    """Vectorized block-split + compaction for one block size."""
    trace = synthetic_trace()

    def go():
        return build_events(trace, 128)

    ev = benchmark.pedantic(go, rounds=3, iterations=1)
    assert int(ev.repeat.sum()) >= len(trace)


def test_sim_throughput_reference(benchmark):
    trace = synthetic_trace(n=60_000)
    cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)
    res = benchmark.pedantic(
        lambda: simulate_trace(trace, 8, cfg), rounds=2, iterations=1
    )
    assert res.refs >= 60_000


def test_sim_throughput_fast(benchmark):
    trace = synthetic_trace(n=60_000)
    cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)
    events = build_events(trace, 128)  # exclude precompute: pure sim loop

    def go():
        return simulate_trace_fast(trace, 8, cfg, events=events)

    res = benchmark.pedantic(go, rounds=2, iterations=1)
    assert res.refs >= 60_000


@pytest.mark.skipif(not HAVE_NATIVE, reason="native kernel unavailable")
def test_sim_throughput_native(benchmark):
    """The compiled protocol core on the same event stream as
    ``test_sim_throughput_fast`` — the per-event dispatch comparison."""
    trace = synthetic_trace(n=60_000)
    cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)
    events = build_events(trace, 128)

    def go():
        return simulate_trace_fast(trace, 8, cfg, events=events,
                                   kernel="native")

    res = benchmark.pedantic(go, rounds=3, iterations=1)
    assert res.refs >= 60_000 and res.kernel == "native"


def _time_grid(lab) -> float:
    """One timed pass of the full experiment grid (runs already warm;
    simulation memos cleared so the protocol core really executes)."""
    from repro.harness import figure3, figure4, headline, table2, table3

    clear()
    t0 = time.perf_counter()
    figure3(lab=lab)
    table2(lab=lab)
    figure4(lab=lab)
    table3(lab=lab)
    headline(lab=lab)
    return time.perf_counter() - t0


def test_grid_warm_kernel_speedup(lab):
    """The headline measurement: the full experiment grid, warm trace
    cache, python core vs native kernel.  Appends the timings to
    ``benchmarks/results/BENCH_engine.json`` and (when the native
    kernel is available) asserts the documented speedup floor."""
    _time_grid(lab)  # warm-up: interpret/load every run, fill event memos

    old = os.environ.get(KERNEL_ENV)
    try:
        os.environ[KERNEL_ENV] = "python"
        python_s = _time_grid(lab)
        if HAVE_NATIVE:
            os.environ[KERNEL_ENV] = "native"
            native_s = _time_grid(lab)
        else:
            native_s = None
    finally:
        if old is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = old

    speedup = (python_s / native_s) if native_s else None
    point = {
        "bench": "grid_warm",
        "python_seconds": round(python_s, 3),
        "native_seconds": round(native_s, 3) if native_s else None,
        "speedup": round(speedup, 2) if speedup else None,
        "native_available": HAVE_NATIVE,
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    path = append_bench_point(point)
    print(f"\nwarm grid: python {python_s:.2f}s"
          + (f", native {native_s:.2f}s ({speedup:.1f}x)" if native_s else "")
          + f" -> {path}")
    sentinel_check(path, ("python_seconds", "native_seconds"))
    if HAVE_NATIVE:
        assert speedup >= 5.0, (
            f"native kernel warm-grid speedup {speedup:.2f}x is below "
            "the documented 5x floor"
        )


def test_sim_memo_hit(benchmark):
    """A repeat simulation of the same (trace, geometry) is a dict hit."""
    clear()
    trace = synthetic_trace(n=60_000)
    cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)
    first = cached_simulate(trace, 8, cfg)
    res = benchmark(cached_simulate, trace, 8, cfg)
    assert res is first
