"""Micro-benchmarks of the fast-path simulation engine: trace freeze,
event-stream precompute, fast vs reference simulator throughput, and
the simulation memo.

Baselines recorded in ``benchmarks/results/engine_baseline.txt``; see
EXPERIMENTS.md ("The performance engine") for the measurement
protocol.
"""

import numpy as np

from repro.runtime.trace import Trace, TraceBuffer
from repro.sim import CacheConfig, build_events, simulate_trace
from repro.sim.engine import simulate_trace_fast
from repro.sim.simcache import cached_simulate, clear


def synthetic_trace(n=200_000, procs=8, seed=7):
    rng = np.random.default_rng(seed)
    return Trace(
        proc=rng.integers(0, procs, n).astype(np.int32),
        addr=(rng.integers(0, 8192, n) * 4).astype(np.int64),
        size=np.where(rng.random(n) < 0.1, 8, 4).astype(np.int32),
        is_write=rng.random(n) < 0.4,
    )


def test_trace_freeze(benchmark):
    """Columnar append + freeze of a 200k-reference trace."""
    def go():
        buf = TraceBuffer()
        append = buf.append
        for i in range(200_000):
            append(i & 7, (i * 4) & 0xFFFF, 4, i & 1 == 0)
        return buf.freeze()

    tr = benchmark.pedantic(go, rounds=2, iterations=1)
    assert len(tr) == 200_000


def test_event_precompute(benchmark):
    """Vectorized block-split + compaction for one block size."""
    trace = synthetic_trace()

    def go():
        return build_events(trace, 128)

    ev = benchmark.pedantic(go, rounds=3, iterations=1)
    assert int(ev.repeat.sum()) >= len(trace)


def test_sim_throughput_reference(benchmark):
    trace = synthetic_trace(n=60_000)
    cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)
    res = benchmark.pedantic(
        lambda: simulate_trace(trace, 8, cfg), rounds=2, iterations=1
    )
    assert res.refs >= 60_000


def test_sim_throughput_fast(benchmark):
    trace = synthetic_trace(n=60_000)
    cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)
    events = build_events(trace, 128)  # exclude precompute: pure sim loop

    def go():
        return simulate_trace_fast(trace, 8, cfg, events=events)

    res = benchmark.pedantic(go, rounds=2, iterations=1)
    assert res.refs >= 60_000


def test_sim_memo_hit(benchmark):
    """A repeat simulation of the same (trace, geometry) is a dict hit."""
    clear()
    trace = synthetic_trace(n=60_000)
    cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)
    first = cached_simulate(trace, 8, cfg)
    res = benchmark(cached_simulate, trace, 8, cfg)
    assert res is first
