"""Table 3 — maximum speedups (and where they occur) for every program
and version, on the KSR2 model — plus the section-5 execution-time
improvement claim (2%-58% while the unoptimized version still scales)."""

from conftest import emit

from repro.harness import DEFAULT_SWEEP, improvements, render_table3, table3


def test_table3(benchmark, lab):
    rows = benchmark.pedantic(
        lambda: table3(proc_counts=DEFAULT_SWEEP, lab=lab),
        rounds=1,
        iterations=1,
    )
    emit("Table 3 (maximum speedups)", render_table3(rows))

    by_name = {r.program: r for r in rows}

    # the compiler version achieves the best peak for every program
    for row in rows:
        c_peak = row.results["C"][0]
        for version, (peak, _at) in row.results.items():
            if version == "C":
                continue
            assert c_peak >= peak * 0.95, (row.program, version)

    # headline orderings from the paper's Table 3
    assert by_name["Water"].results["C"][0] > 1.7 * by_name["Water"].results["P"][0]
    assert by_name["Mp3d"].results["C"][0] > 1.4 * by_name["Mp3d"].results["P"][0]
    assert by_name["Pverify"].results["C"][0] > 1.5 * by_name["Pverify"].results["N"][0]
    # Pthor barely scales no matter what (queue serialization)
    assert by_name["Pthor"].results["C"][0] < 8.0
    # Fmm's compiler version is the suite's best scaler
    assert by_name["Fmm"].results["C"][0] == max(
        r.results["C"][0] for r in rows
    )


def test_improvements_while_scaling(benchmark, lab):
    imp = benchmark.pedantic(
        lambda: improvements(proc_counts=DEFAULT_SWEEP, lab=lab),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{r.program:<12} max C-over-N improvement "
        f"{100 * r.max_improvement:5.1f}%  "
        + " ".join(f"{p}:{100 * v:+.0f}%" for p, v in sorted(r.by_procs.items()))
        for r in imp
    ]
    emit("Section 5 — execution-time improvement while N scales "
         "(paper: 2%-58%)", "\n".join(lines))
    # the compiler version improves execution time for every program
    # somewhere in the unoptimized version's scaling range
    for r in imp:
        assert r.max_improvement > 0.0, r.program
    # the strongest gains belong to the untuned programs (paper:
    # Maxflow 50%, Pverify 58%)
    best = max(imp, key=lambda r: r.max_improvement)
    assert best.program in ("Pverify", "Maxflow")
