"""Micro-benchmarks of the toolchain components: frontend, analysis,
interpreter and coherence simulator throughput."""

import numpy as np

from repro.analysis import analyze_program
from repro.lang import compile_source, parse
from repro.layout import DataLayout
from repro.runtime import run_program
from repro.runtime.trace import Trace
from repro.sim import CacheConfig, simulate_trace
from repro.transform import decide_transformations
from repro.workloads import RAYTRACE, WATER


def test_parse_throughput(benchmark):
    src = WATER.source
    prog = benchmark(parse, src)
    assert prog.func("main") is not None


def test_compile_and_check(benchmark):
    checked = benchmark(compile_source, RAYTRACE.source)
    assert checked.worker_names


def test_full_analysis(benchmark):
    checked = compile_source(WATER.source)
    pa = benchmark(analyze_program, checked, 8)
    assert pa.patterns


def test_decision_heuristics(benchmark):
    checked = compile_source(WATER.source)
    pa = analyze_program(checked, 8)
    plan = benchmark(decide_transformations, pa)
    assert not plan.is_empty


def test_interpreter_throughput(benchmark):
    checked = compile_source(WATER.source)
    layout = DataLayout(checked, nprocs=4)

    def go():
        return run_program(checked, layout, 4)

    run = benchmark.pedantic(go, rounds=2, iterations=1)
    assert len(run.trace) > 1000


def test_coherence_sim_throughput(benchmark):
    rng = np.random.default_rng(7)
    n = 60_000
    trace = Trace(
        proc=rng.integers(0, 8, n).astype(np.int32),
        addr=(rng.integers(0, 4096, n) * 4).astype(np.int64),
        size=np.full(n, 4, dtype=np.int32),
        is_write=rng.random(n) < 0.4,
    )
    cfg = CacheConfig(size=32 * 1024, block_size=128, assoc=4)

    def go():
        return simulate_trace(trace, 8, cfg)

    res = benchmark.pedantic(go, rounds=2, iterations=1)
    assert res.refs >= n
