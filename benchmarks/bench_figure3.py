"""Figure 3 — total miss rates split into false-sharing and other
misses, unoptimized vs compiler-transformed, at 16- and 128-byte blocks
(12 processors; Topopt 9)."""

from conftest import emit

from repro.harness import figure3, render_figure3


def test_figure3(benchmark, lab):
    result = benchmark.pedantic(
        lambda: figure3(lab=lab), rounds=1, iterations=1
    )
    emit("Figure 3 (miss rates, N vs C)", render_figure3(result))

    for row in result.rows:
        n128 = row.cells[(128, "N")]
        c128 = row.cells[(128, "C")]
        # the compiler reduces false sharing for every program
        assert c128.fs_rate < n128.fs_rate, row.program
        # false sharing is greater with larger block sizes (N version)
        n16 = row.cells[(16, "N")]
        assert n128.fs_rate >= 0.5 * n16.fs_rate, row.program

    # Fmm/Pverify/Radiosity are the >90% reducers; all programs improve
    strong = {"Fmm", "Pverify", "Radiosity"}
    for row in result.rows:
        n, c = row.cells[(128, "N")], row.cells[(128, "C")]
        reduction = 1 - c.fs_rate / n.fs_rate if n.fs_rate else 0.0
        if row.program in strong:
            assert reduction > 0.8, (row.program, reduction)
