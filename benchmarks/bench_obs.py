"""The observability tax: what profiling + manifest recording cost.

Spans, perf counters, and run manifests are supposed to be cheap enough
to leave on for every experiment run — the run-record store is only as
good as the history people actually record.  This bench times the full
warm experiment grid (the same figure3/table2/figure4/table3/headline
pass as ``bench_engine``'s headline measurement — trace cache warm,
simulation memos cleared, the default kernel) three ways:

* **off** — no profiling, no manifest log (the baseline);
* **manifest** — ``REPRO_RUN_LOG`` set: every figure-3 grid point
  assembles and appends a schema-2 record (plus its attribution table);
* **full** — manifests *and* span tracing enabled across every driver.

Each timing is appended to ``benchmarks/results/BENCH_obs.json``; the
assertion holds the full-observability pass to < 5% over the unprofiled
one.  Arms alternate (so machine drift hits all three equally) and each
arm takes its best of 3 passes — timing noise on a shared box is
strictly additive, so the minimum estimates the true cost.  The
trajectory is sentinel-checked like BENCH_engine.json.
"""

import os
import time

from repro.obs import manifest
from repro.obs import spans as obs

from bench_engine import (
    BENCH_JSON,
    _time_grid,
    append_bench_point,
    sentinel_check,
)

BENCH_OBS_JSON = BENCH_JSON.parent / "BENCH_obs.json"

#: Overhead ceiling for profiling + manifests on the warm grid.
MAX_OVERHEAD = 0.05




def test_observability_overhead_under_5_percent(lab, tmp_path):
    """The full warm experiment grid with observability on stays within
    5% of the unprofiled run."""
    _time_grid(lab)  # warm-up: interpret/load runs, build event memos

    old_log = os.environ.pop(manifest.RUN_LOG_ENV, None)
    off, with_manifest, full = [], [], []
    try:
        # alternate the arms so cache/CPU drift cannot bias one side
        for i in range(3):
            os.environ.pop(manifest.RUN_LOG_ENV, None)
            obs.disable()
            off.append(_time_grid(lab))

            os.environ[manifest.RUN_LOG_ENV] = str(
                tmp_path / f"runs_{i}.jsonl"
            )
            with_manifest.append(_time_grid(lab))

            obs.enable()
            obs.reset()
            full.append(_time_grid(lab))
            obs.reset()
    finally:
        obs.disable()
        if old_log is None:
            os.environ.pop(manifest.RUN_LOG_ENV, None)
        else:
            os.environ[manifest.RUN_LOG_ENV] = old_log

    base, m, f = min(off), min(with_manifest), min(full)
    overhead = f / base - 1.0
    point = {
        "bench": "obs_tax_grid",
        "off_seconds": round(base, 3),
        "manifest_seconds": round(m, 3),
        "full_seconds": round(f, 3),
        "overhead": round(overhead, 4),
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    path = append_bench_point(point, BENCH_OBS_JSON)
    print(
        f"\nobservability tax: off {base:.3f}s, +manifest {m:.3f}s, "
        f"+spans {f:.3f}s ({overhead * 100:+.1f}%) -> {path}"
    )
    sentinel_check(path, ("off_seconds", "full_seconds"))
    # one record per grid point really was written in the manifest arms
    recorded = manifest.read_all(tmp_path / "runs_0.jsonl")
    assert recorded, "manifest arm recorded nothing"
    assert overhead < MAX_OVERHEAD, (
        f"profiling+manifests cost {overhead * 100:.1f}% on the warm grid "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)"
    )
