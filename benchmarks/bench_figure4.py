"""Figure 4 — speedup vs processor count for the three representative
programs (Raytrace: compiler ≈ programmer; Fmm: programmer ≈ nothing;
Pverify: in between)."""

from conftest import emit

from repro.harness import DEFAULT_SWEEP, figure4, render_scalability


def test_figure4(benchmark, lab):
    results = benchmark.pedantic(
        lambda: figure4(proc_counts=DEFAULT_SWEEP, lab=lab),
        rounds=1,
        iterations=1,
    )
    for sc in results:
        emit(f"Figure 4 — {sc.program}", render_scalability(sc))

    by_name = {sc.program: sc for sc in results}

    # Pverify: compiler well above both N and programmer
    pv = by_name["Pverify"].curves
    assert pv["C"].max_speedup > 1.5 * pv["N"].max_speedup
    assert pv["C"].max_speedup > 1.5 * pv["P"].max_speedup

    # Fmm: programmer efforts brought little gain (P tracks N), while
    # the compiler version keeps scaling
    fmm = by_name["Fmm"].curves
    assert abs(fmm["P"].max_speedup - fmm["N"].max_speedup) < 0.2 * fmm["N"].max_speedup
    assert fmm["C"].max_speedup > 1.3 * fmm["N"].max_speedup
    assert fmm["C"].max_at >= fmm["N"].max_at

    # Raytrace: compiler and programmer comparable, both above N
    rt = by_name["Raytrace"].curves
    assert rt["C"].max_speedup >= rt["P"].max_speedup * 0.9
    assert rt["C"].max_speedup >= rt["N"].max_speedup
