"""Shared state for the experiment benchmarks.

A single session-scoped :class:`~repro.harness.WorkloadLab` caches every
(workload, version, processor-count) run, so the table/figure benches
share traces instead of re-executing the interpreter.
"""

from __future__ import annotations

import pytest

from repro.harness import WorkloadLab


@pytest.fixture(scope="session")
def lab() -> WorkloadLab:
    return WorkloadLab()


def emit(title: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under
    benchmarks/results/ (pytest captures stdout of passing tests)."""
    import pathlib
    import re

    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{text}\n", flush=True)
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]
    (results / f"{slug}.txt").write_text(f"{title}\n{bar}\n{text}\n")
