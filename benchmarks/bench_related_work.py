"""Section 6 comparisons: static analysis vs the profile-guided
transformations of Torrellas et al. [TLH94] and the word-granularity
invalidation hardware of Dubois et al. [DSR+93].

The paper: TLH94 "reduced the number of shared misses by 10% and 13%"
(64-byte blocks) where "our transformations reduced the total miss rate
by an average of 49%"; DSR+93's word invalidation "totally eliminated"
false-sharing misses at the cost of increased traffic and hardware.
"""

from conftest import emit

from repro.sim import simulate_run
from repro.transform.profile_guided import profile_guided_plan
from repro.workloads import SIMULATION_WORKLOADS

BLOCK = 64  # the block size of the paper's TLH94 comparison


def test_related_work(benchmark, lab):
    def study():
        rows = []
        for wl in SIMULATION_WORKLOADS:
            nprocs = wl.fig3_procs
            pipe = lab.pipeline(wl)
            vn = lab.run(wl, "N", nprocs)
            vc = lab.run(wl, "C", nprocs)
            tplan = profile_guided_plan(vn.run, vn.layout, block_size=BLOCK)
            vt = pipe.run_with_plan(nprocs, tplan, "TLH94")
            sn = vn.simulate(BLOCK)
            sc = vc.simulate(BLOCK)
            st = vt.simulate(BLOCK)
            sw = simulate_run(vn.run, BLOCK, word_invalidate=True)
            rows.append(
                {
                    "program": wl.name,
                    "n_total": sn.total_misses,
                    "n_fs": sn.misses.false_sharing,
                    "c_total": sc.total_misses,
                    "c_fs": sc.misses.false_sharing,
                    "t_total": st.total_misses,
                    "t_fs": st.misses.false_sharing,
                    "w_total": sw.total_misses,
                    "w_fs": sw.misses.false_sharing,
                    "w_inval": sw.invalidations,
                    "n_inval": sn.invalidations,
                }
            )
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)

    lines = [
        f"{'Program':<12} {'N misses':>9} {'compiler':>9} {'TLH94':>9} "
        f"{'word-inv':>9}   (false-sharing misses in parens)"
    ]
    for r in rows:
        lines.append(
            f"{r['program']:<12} {r['n_total']:>9} "
            f"{r['c_total']:>5}({r['c_fs']:>4}) "
            f"{r['t_total']:>5}({r['t_fs']:>4}) "
            f"{r['w_total']:>5}({r['w_fs']:>4})"
        )
    c_red = [1 - r["c_total"] / r["n_total"] for r in rows]
    t_red = [1 - r["t_total"] / r["n_total"] for r in rows]
    lines.append(
        f"average total-miss reduction: compiler "
        f"{100 * sum(c_red) / len(c_red):.1f}%  profile-guided "
        f"{100 * sum(t_red) / len(t_red):.1f}%  (paper: 49% vs 10-13%)"
    )
    emit("Section 6 — related-work comparison at 64-byte blocks",
         "\n".join(lines))

    # the compiler reduces total misses more than the profile-guided
    # pad-only baseline, on average (the paper's section-6 argument)
    assert sum(c_red) > sum(t_red)
    # word invalidation eliminates false sharing entirely [DSR+93]
    for r in rows:
        assert r["w_fs"] == 0, r["program"]
    # ... at the price of more invalidation traffic on some programs
    assert any(r["w_inval"] > r["n_inval"] for r in rows)
