"""Ablations of the design choices DESIGN.md calls out.

1. **Multiple regular section descriptors** (paper section 3.1: "to
   improve its accuracy we allow multiple regular section descriptors
   and only merge them when very little or no information will be
   lost"): capping the per-array descriptor list at one forces eager
   merging, destroys disjointness evidence, and loses transformations.
2. **The pad&align frequency bar** (section 3.2: "judicious use of
   padding need not have these effects"): removing the bar pads every
   shared structure and trades away spatial locality.
3. **Always-padded locks vs co-allocation** is covered by the TLH94
   baseline in bench_related_work.py.
"""

from unittest import mock

from conftest import emit

from repro.transform import decide_transformations
from repro.workloads import by_name


def _fs_with_plan(pipe, plan, nprocs, block=128):
    vr = pipe.run_with_plan(nprocs, plan, "ablation")
    return vr.simulate(block)


#: A kernel whose hot array is written through *two* different PDV-affine
#: sections (one per phase).  Kept separate, each descriptor proves a
#: disjoint partition; merged eagerly, the differing PDV coefficients
#: collapse to "unknown" and group&transpose is lost.
_TWO_SECTION_SRC = """
int acc[128];
int out[64];

void worker(int pid)
{
    int i;
    for (i = 0; i < 120; i++) {
        acc[pid] += 1;
    }
    barrier();
    for (i = 0; i < 120; i++) {
        acc[pid * 2 + 64] += 1;
    }
    out[pid] = acc[pid];
}

int main()
{
    int p;
    for (p = 0; p < nprocs(); p++) { create(worker, p); }
    wait_for_end();
    print(out[0]);
    return 0;
}
"""


def test_descriptor_limit_ablation(benchmark):
    """One descriptor per array (eager merging) vs the paper's ten."""
    from repro.harness import Pipeline

    nprocs = 12

    def study():
        pipe = Pipeline(_TWO_SECTION_SRC)
        full_plan = pipe.compiler_plan(nprocs)
        with mock.patch("repro.rsd.ops.MAX_DESCRIPTORS", 1), mock.patch(
            "repro.rsd.ops.LOSSLESS_THRESHOLD", 1.0
        ):
            merged_analysis = Pipeline(_TWO_SECTION_SRC).analysis(nprocs)
            merged_plan = decide_transformations(merged_analysis)
        sn = pipe.run_unoptimized(nprocs).simulate(128)
        sc = _fs_with_plan(pipe, full_plan, nprocs)
        sm = _fs_with_plan(pipe, merged_plan, nprocs)
        return sn, sc, sm, full_plan, merged_plan

    sn, sc, sm, full_plan, merged_plan = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    full_grouped = {m.base for m in full_plan.group}
    merged_grouped = {m.base for m in merged_plan.group}
    emit(
        "Ablation 1 — descriptor limit (two-section kernel)",
        f"paper policy (<=10 descriptors): grouped {sorted(full_grouped)}, "
        f"FS {sn.misses.false_sharing} -> {sc.misses.false_sharing}\n"
        f"eager merging (1 descriptor):    grouped {sorted(merged_grouped)}, "
        f"FS {sn.misses.false_sharing} -> {sm.misses.false_sharing}",
    )
    # keeping multiple descriptors preserves the hot array's partition...
    assert "acc" in full_grouped
    assert "acc" not in merged_grouped
    # ...and therefore removes more false sharing
    assert sc.misses.false_sharing < sm.misses.false_sharing


def test_pad_frequency_bar_ablation(benchmark, lab):
    """Indiscriminate padding vs the frequency-gated policy."""
    wl = by_name("Maxflow")
    nprocs = wl.fig3_procs

    def study():
        pipe = lab.pipeline(wl)
        pa = pipe.analysis(nprocs)
        gated = pipe.compiler_plan(nprocs)
        greedy = decide_transformations(pa, pad_weight_fraction=0.0)
        sn = lab.run(wl, "N", nprocs).simulate(128)
        sg = _fs_with_plan(pipe, gated, nprocs)
        sa = _fs_with_plan(pipe, greedy, nprocs)
        return sn, sg, sa, gated, greedy

    sn, sg, sa, gated, greedy = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    emit(
        "Ablation 2 — pad&align frequency bar (Maxflow)",
        f"gated padding   ({len(gated.pads)} pads): total misses "
        f"{sn.total_misses} -> {sg.total_misses} (FS {sg.misses.false_sharing})\n"
        f"pad everything  ({len(greedy.pads)} pads): total misses "
        f"{sn.total_misses} -> {sa.total_misses} (FS {sa.misses.false_sharing})",
    )
    # removing the bar pads more structures...
    assert len(greedy.pads) > len(gated.pads)
    # ...killing more false sharing but costing other misses: the
    # non-FS misses must grow relative to the gated policy
    other_gated = sg.total_misses - sg.misses.false_sharing
    other_greedy = sa.total_misses - sa.misses.false_sharing
    assert other_greedy > other_gated
