"""Table 2 — false-sharing reduction per program, attributed per
transformation, averaged over 8-256 byte blocks."""

from conftest import emit

from repro.harness import render_table2, table2


def test_table2(benchmark, lab):
    result = benchmark.pedantic(
        lambda: table2(lab=lab), rounds=1, iterations=1
    )
    emit("Table 2 (FS reduction by transformation)", render_table2(result))

    # every program reduces false sharing substantially
    for row in result.rows:
        assert row.total_reduction > 40.0, (row.program, row.total_reduction)

    # dominant transformations per the paper's Table 2
    dominant = {
        row.program: max(row.by_transform, key=row.by_transform.get)
        for row in result.rows
    }
    assert dominant["Maxflow"] in ("pad_align", "locks")
    assert dominant["Pverify"] == "indirection"
    assert dominant["Topopt"] == "group_transpose"
    assert dominant["Fmm"] == "group_transpose"
    assert dominant["Radiosity"] == "group_transpose"
    assert dominant["Raytrace"] == "group_transpose"

    # Maxflow applies neither group&transpose nor indirection
    mrow = result.row("Maxflow")
    assert mrow.by_transform.get("group_transpose", 0.0) == 0.0
    assert mrow.by_transform.get("indirection", 0.0) == 0.0

    # the residual-FS programs reduce less than the clean ones
    assert result.row("Maxflow").total_reduction < result.row("Fmm").total_reduction
