"""Table 1 — the benchmark inventory."""

from conftest import emit

from repro.harness import render_table1, table1


def test_table1(benchmark):
    rows = benchmark(table1)
    assert len(rows) == 10
    emit("Table 1 (benchmarks used in our study)", render_table1(rows))
