#!/usr/bin/env python
"""Anatomy of false sharing: block-size sweep and per-structure
attribution.

Shows the two results the paper's simulation section builds on:
false-sharing misses grow with the coherence-unit size, and the miss
attribution pinpoints exactly which data structure is responsible — the
ground truth the static analysis is validated against.

Run:  python examples/false_sharing_demo.py
"""

from repro import DataLayout, compile_source, run_program
from repro.layout.regions import build_region_map
from repro.sim import simulate_run, sweep_block_sizes, top_fs_structures

NPROCS = 8

SRC = """
int hot[32];        // one word per process: the false-sharing victim
int readonly[256];  // shared read-only table: harmless
int migratory;      // a genuinely communicated scalar: true sharing

void worker(int pid)
{
    int i;
    int x;
    x = 0;
    for (i = 0; i < 300; i++) {
        hot[pid] += readonly[(pid * 31 + i) % 256];
        if (i % 50 == 0) {
            migratory = migratory + 1;   // real communication
        }
    }
}

int main()
{
    int i;
    int p;
    for (i = 0; i < 256; i++) {
        readonly[i] = rnd(i) % 5;
    }
    migratory = 0;
    for (p = 0; p < nprocs(); p++) {
        create(worker, p);
    }
    wait_for_end();
    print(migratory);
    return 0;
}
"""


def main() -> None:
    checked = compile_source(SRC)
    layout = DataLayout(checked, nprocs=NPROCS, block_size=128)
    run = run_program(checked, layout, NPROCS)

    print("block-size sweep (the paper: 'False sharing is greater with "
          "larger block sizes'):")
    sweep = sweep_block_sizes(run, [4, 8, 16, 32, 64, 128, 256])
    for bs in sweep.block_sizes:
        r = sweep.results[bs]
        frac = (
            r.misses.false_sharing / r.total_misses if r.total_misses else 0
        )
        print(
            f"  {bs:4d} B blocks: {r.total_misses:5d} misses, "
            f"{r.misses.false_sharing:5d} false sharing ({100 * frac:4.1f}%), "
            f"{r.misses.true_sharing:4d} true sharing"
        )

    print("\nper-structure attribution at 128 B (simulation ground truth):")
    sim = simulate_run(run, 128)
    regions = build_region_map(layout, run.heap_segments)
    for s in top_fs_structures(sim, regions, 5):
        print(
            f"  {s.name:12s} false-sharing misses {s.false_sharing:5d} "
            f"(of {s.total:5d} total)"
        )
    print("\n'hot' is the culprit; 'readonly' never misses after the first "
          "touch; 'migratory' shows up as true sharing.")


if __name__ == "__main__":
    main()
