#!/usr/bin/env python
"""Case study: one SPLASH-style workload through the whole evaluation.

Reproduces, for Pverify (the indirection-dominated benchmark), the three
comparisons of the paper's section 5: the transformation plan, the
Figure-3 style miss-rate comparison, and the three-version (N/C/P)
scalability curve on the KSR2 model.

Run:  python examples/workload_study.py            (takes ~1 minute)
"""

from repro.harness import WorkloadLab, render_scalability, scalability
from repro.sim import top_fs_structures
from repro.workloads import PVERIFY

PROCS = (1, 2, 4, 8, 16)


def main() -> None:
    wl = PVERIFY
    lab = WorkloadLab()
    pipe = lab.pipeline(wl)

    print(f"== {wl.name}: {wl.description} "
          f"({wl.paper_lines} lines of C in the original)")
    plan = pipe.compiler_plan(wl.fig3_procs)
    print(plan.describe())
    print()

    # --- Figure-3 style miss rates at 12 processors ------------------------
    vn = lab.run(wl, "N", wl.fig3_procs)
    vc = lab.run(wl, "C", wl.fig3_procs)
    for label, vr in (("N", vn), ("C", vc)):
        sim = vr.simulate(128)
        print(
            f"  version {label}: miss rate {100 * sim.miss_rate:5.2f}%, "
            f"false sharing {sim.misses.false_sharing:5d} "
            f"(paper total reduction for {wl.name}: "
            f"{wl.paper_fs_reduction}%)"
        )
    print("\n  top falsely-shared structures (N version):")
    sn = vn.simulate(128)
    for s in top_fs_structures(sn, vn.regions(), 3):
        print(f"    {s.name:24s} {s.false_sharing:5d} FS misses")
    print()

    # --- three-version scalability -----------------------------------------
    sc = scalability(wl, PROCS, lab)
    print(render_scalability(sc))
    print()
    for version, curve in sc.curves.items():
        paper = wl.paper_max_speedup.get(version)
        paper_txt = f"(paper {paper[0]} at {paper[1]})" if paper else ""
        print(
            f"  {version}: max speedup {curve.max_speedup:.1f} "
            f"at {curve.max_at} processors {paper_txt}"
        )


if __name__ == "__main__":
    main()
