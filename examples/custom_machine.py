#!/usr/bin/env python
"""Machine-parameter study: how the coherence unit and the interconnect
shape the value of the transformations.

The paper's conclusion predicts that "with the trend toward larger
caches, larger coherence units, and longer memory latencies, false
sharing will have an increasingly large, negative performance impact."
This example varies the simulated machine to show exactly that: the
unoptimized/transformed gap widens with the block size and with the
ring latency.

Run:  python examples/custom_machine.py
"""

from repro import KSR2Config, time_run
from repro.harness import Pipeline
from repro.workloads import WATER

NPROCS = 8


def main() -> None:
    pipe = Pipeline(WATER.source)
    base = pipe.run_unoptimized(NPROCS)
    opt = pipe.run_compiler(NPROCS)

    print("== coherence-unit sweep (simulated 32 KB caches, 8 procs)")
    print(f"{'block':>6} {'N misses':>9} {'C misses':>9} {'N FS':>7} {'C FS':>7}")
    for bs in (16, 32, 64, 128, 256):
        sn = base.simulate(bs)
        sc = opt.simulate(bs)
        print(
            f"{bs:>5}B {sn.total_misses:>9} {sc.total_misses:>9} "
            f"{sn.misses.false_sharing:>7} {sc.misses.false_sharing:>7}"
        )

    print("\n== interconnect-latency sweep (KSR2 timing model)")
    print(f"{'latency':>8} {'T(N) Mcycles':>13} {'T(C) Mcycles':>13} {'gain':>6}")
    for lat in (90.0, 175.0, 350.0, 700.0):
        cfg = KSR2Config(cpi=WATER.cpi, local_latency=lat, remote_latency=4 * lat)
        tn = time_run(base.run, cfg)
        tc = time_run(opt.run, cfg)
        gain = 1.0 - tc.cycles / tn.cycles
        print(
            f"{lat:>7.0f}c {tn.cycles / 1e6:>12.2f} {tc.cycles / 1e6:>12.2f} "
            f"{100 * gain:>5.1f}%"
        )
    print("\nLonger latencies and larger blocks make the compile-time "
          "transformations more valuable — the paper's closing argument.")


if __name__ == "__main__":
    main()
