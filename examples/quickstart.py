#!/usr/bin/env python
"""Quickstart: the paper's Figure 1/2 scenario end to end.

A small explicitly parallel program keeps per-process counters in
interleaved vectors (classic false sharing).  We run the compile-time
analysis, let the section-3.3 heuristics pick transformations, print the
source-to-source rewriting, and measure the miss-rate effect with the
multiprocessor cache simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    DataLayout,
    analyze_program,
    compile_source,
    decide_transformations,
    render_transformed_source,
    run_program,
    simulate_run,
)

NPROCS = 8

SRC = """
// Figure-1 style program: per-process data in interleaved vectors.
lock_t sumlock;
int count[64];
double val[64];
double total;

void worker(int pid)
{
    int i;
    for (i = 0; i < 200; i++) {
        count[pid] += 1;                 // every write invalidates the
        val[pid] = val[pid] + 0.5;       // other processors' copies
    }
    barrier();
    lock(&sumlock);
    total = total + val[pid];
    unlock(&sumlock);
}

int main()
{
    int p;
    total = 0.0;
    for (p = 0; p < nprocs(); p++) {
        create(worker, p);
    }
    wait_for_end();
    print(total);
    return 0;
}
"""


def main() -> None:
    checked = compile_source(SRC)

    # --- compile-time analysis (stages 1-3 + PDV detection) ---------------
    analysis = analyze_program(checked, nprocs=NPROCS)
    print("PDVs detected:", analysis.pdvinfo.workers)
    print("worker phases:", analysis.phase_info.worker_phases)
    print()

    # --- transformation decisions -----------------------------------------
    plan = decide_transformations(analysis, block_size=128)
    print(plan.describe())
    print()
    for d in plan.decisions:
        print("  decision:", d)
    print()

    # --- the source-to-source view ----------------------------------------
    print("--- transformed source " + "-" * 40)
    print(render_transformed_source(checked, plan, nprocs=NPROCS))

    # --- measure the effect -------------------------------------------------
    base = run_program(checked, DataLayout(checked, nprocs=NPROCS), NPROCS)
    opt = run_program(
        checked, DataLayout(checked, plan, nprocs=NPROCS), NPROCS
    )
    assert base.output == opt.output, "transformations must not change results"

    for label, run in (("unoptimized", base), ("transformed", opt)):
        sim = simulate_run(run, block_size=128)
        print(
            f"{label:>12}: miss rate {100 * sim.miss_rate:5.2f}%  "
            f"false sharing {sim.misses.false_sharing:5d}  "
            f"other {sim.total_misses - sim.misses.false_sharing:5d}"
        )


if __name__ == "__main__":
    main()
